//! Stackful fibers: the substrate of the event-driven rank runtime.
//!
//! The paper's machines ran one heavyweight process per node; our `Threads`
//! runtime mirrors that with one OS thread per rank, which caps simulations
//! near np≈100. To *measure* (not model) the paper's 1024–6800 processor
//! configurations, the `Events` runtime multiplexes thousands of rank
//! bodies onto a few worker threads. Each rank becomes a fiber: a private
//! stack plus a saved register frame, switched cooperatively at the
//! scheduler hooks every channel operation already passes through.
//!
//! The context switch saves exactly what the `SysV` x86-64 ABI makes the
//! callee's problem: rbp, rbx, r12–r15, the SSE control/status word and the
//! x87 control word. Everything else is caller-saved and dead across the
//! `hot97_fiber_switch` call by construction.
//!
//! Safety story (why the `unsafe` below is sound):
//! * A fiber is resumed by at most one worker at a time (the executor's
//!   `Running` status transition enforces exclusivity under a lock).
//! * A suspended fiber's state lives entirely on its own stack; it may be
//!   resumed from a *different* worker thread — nothing thread-local leaks
//!   across a switch because `CURRENT` is re-pinned on every resume.
//! * Unwinding never crosses the assembly frames: the entry trampoline
//!   catches every panic and aborts the process if one escapes (rank
//!   bodies catch their own panics before this backstop is reachable).
//! * Scoped (non-`'static`) bodies are sound because the executor joins
//!   all fibers before the borrowed scope ends, exactly like
//!   `std::thread::scope`.
#![allow(unsafe_code)]

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[cfg(not(target_arch = "x86_64"))]
compile_error!("the hot-comm Events runtime requires x86_64 (stackful fiber switch)");

// The switch: push callee-saved registers and the FP environment onto the
// current stack, store rsp through `save`, load rsp from `restore`, pop the
// other context's frame and return into it. 64 bytes per suspended frame.
core::arch::global_asm!(
    r#"
    .text
    .globl hot97_fiber_switch
    .p2align 4
hot97_fiber_switch:
    push rbp
    push rbx
    push r12
    push r13
    push r14
    push r15
    sub rsp, 8
    stmxcsr dword ptr [rsp]
    fnstcw word ptr [rsp + 4]
    mov qword ptr [rdi], rsp
    mov rsp, qword ptr [rsi]
    ldmxcsr dword ptr [rsp]
    fldcw word ptr [rsp + 4]
    add rsp, 8
    pop r15
    pop r14
    pop r13
    pop r12
    pop rbx
    pop rbp
    ret

    .globl hot97_fiber_fpenv
    .p2align 4
hot97_fiber_fpenv:
    sub rsp, 16
    mov qword ptr [rsp], 0
    stmxcsr dword ptr [rsp]
    fnstcw word ptr [rsp + 4]
    mov rax, qword ptr [rsp]
    add rsp, 16
    ret

    // First activation of a fiber: the bootstrap frame put the payload
    // pointer in r15 and this trampoline in the return slot. The frame was
    // laid out so rsp is 16-aligned here; the call below then gives
    // hot97_fiber_entry the standard post-call alignment (rsp ≡ 8 mod 16).
    .globl hot97_fiber_start
    .p2align 4
hot97_fiber_start:
    mov rdi, r15
    call hot97_fiber_entry
    ud2
"#
);

extern "C" {
    fn hot97_fiber_switch(save: *mut usize, restore: *const usize);
    fn hot97_fiber_fpenv() -> u64;
    fn hot97_fiber_start();
}

/// Heap box handed to the trampoline on first activation.
struct Payload {
    body: Box<dyn FnOnce() + Send + 'static>,
}

/// Magic written at the low end of every fiber stack; checked after each
/// resume as a best-effort overflow tripwire (fiber stacks have no guard
/// page — they are plain heap allocations).
const STACK_CANARY: u64 = 0xF1BE_F1BE_DEAD_CA11;

/// Saved-frame size the switch code pushes/pops (6 GPRs + fpenv + ret).
const BOOT_FRAME: usize = 64;

thread_local! {
    /// The fiber currently executing on this worker thread, null between
    /// resumes. Re-pinned on every resume, so fibers may migrate workers.
    static CURRENT: Cell<*mut Fiber> = const { Cell::new(std::ptr::null_mut()) };
}

/// One suspended (or running) rank context.
pub(crate) struct Fiber {
    /// Owned stack. `vec![0u8; n]` goes through `alloc_zeroed`, so the
    /// pages are lazily mapped zero pages: thousands of multi-MiB stacks
    /// cost only the memory actually touched.
    stack: Vec<u8>,
    /// Saved rsp of the fiber while suspended.
    sp: usize,
    /// Saved rsp of the worker while the fiber runs.
    worker_sp: usize,
    started: bool,
    finished: bool,
    /// Owned until first activation (freed by `Drop` if never started);
    /// consumed by the entry trampoline otherwise.
    payload: *mut Payload,
}

// A Fiber is a bag of plain data plus a raw payload pointer that only the
// fiber's own (exclusively resumed) context touches; moving it between
// worker threads is safe.
unsafe impl Send for Fiber {}

impl Fiber {
    /// Build a fiber that will run `body` on its own `stack_size`-byte
    /// stack when first resumed.
    ///
    /// # Safety
    ///
    /// `body` may borrow non-`'static` data; the caller must guarantee the
    /// fiber is driven to completion (or dropped) before those borrows
    /// expire — the executor does this by joining inside `thread::scope`.
    pub(crate) unsafe fn new_scoped<'a>(
        stack_size: usize,
        body: Box<dyn FnOnce() + Send + 'a>,
    ) -> Fiber {
        let body: Box<dyn FnOnce() + Send + 'static> = std::mem::transmute(body);
        let mut stack = vec![0u8; stack_size.max(64 * 1024)];
        let base = stack.as_mut_ptr() as usize;
        (base as *mut u64).write_unaligned(STACK_CANARY);
        let top = (base + stack.len()) & !15;
        let sp = top - BOOT_FRAME;
        let payload = Box::into_raw(Box::new(Payload { body }));
        let p = sp as *mut usize;
        // Bootstrap frame, mirroring what hot97_fiber_switch pops:
        //   [0] fpenv (mxcsr + x87cw, inherited from the creating thread)
        //   [1] r15 = payload   [2..6] r14,r13,r12,rbx,rbp = 0
        //   [7] return address = trampoline
        p.add(0).write(hot97_fiber_fpenv() as usize);
        p.add(1).write(payload as usize);
        for i in 2..7 {
            p.add(i).write(0);
        }
        p.add(7).write(hot97_fiber_start as *const () as usize);
        Fiber { stack, sp, worker_sp: 0, started: false, finished: false, payload }
    }

    /// Run the fiber until it yields or its body returns. Returns `true`
    /// once the body has finished (further resumes are a bug).
    pub(crate) fn resume(&mut self) -> bool {
        assert!(!self.finished, "resumed a finished fiber");
        self.started = true;
        let prev = CURRENT.with(|c| c.replace(self as *mut Fiber));
        // SAFETY: sp points at a frame laid out by `new_scoped` or by a
        // previous suspend of this same fiber; exclusivity of resume is the
        // executor's invariant.
        unsafe {
            hot97_fiber_switch(&mut self.worker_sp, &self.sp);
        }
        CURRENT.with(|c| c.set(prev));
        let canary =
            unsafe { (self.stack.as_ptr() as *const u64).read_unaligned() };
        assert!(
            canary == STACK_CANARY,
            "fiber stack overflow detected (canary clobbered) — raise \
             RunConfig::builder().stack_size(..)"
        );
        self.finished
    }
}

impl Drop for Fiber {
    fn drop(&mut self) {
        if !self.started {
            // Entry never ran; reclaim the payload box.
            drop(unsafe { Box::from_raw(self.payload) });
        }
        // A started-but-unfinished fiber's stack is freed without running
        // the Drops of values parked on it. That only happens when the
        // executor is already unwinding a rank panic out of `World`; the
        // leak is bounded and the alternative (unwinding a foreign stack)
        // is unsound.
    }
}

/// Suspend the current fiber and return control to the worker that resumed
/// it. Panics when called from outside any fiber (a scheduler-wiring bug).
pub(crate) fn fiber_yield() {
    let f = CURRENT.with(std::cell::Cell::get);
    assert!(!f.is_null(), "fiber_yield outside a fiber");
    // SAFETY: `f` is pinned for the duration of `resume` by the worker
    // holding `&mut Fiber`; we are that resumed context.
    unsafe {
        hot97_fiber_switch(&mut (*f).sp, &(*f).worker_sp);
    }
}

/// Whether the caller is running on a fiber (vs. a plain OS thread).
#[cfg(test)]
pub(crate) fn on_fiber() -> bool {
    CURRENT.with(|c| !c.get().is_null())
}

/// First-activation entry, called by the asm trampoline with the payload
/// pointer. Never returns: after the body completes it parks in a yield
/// loop so a (buggy) extra resume cannot run off the stack.
#[no_mangle]
extern "C" fn hot97_fiber_entry(payload: *mut Payload) -> ! {
    // SAFETY: the trampoline passes the pointer `new_scoped` leaked; this
    // is its unique consumption.
    let body = unsafe { Box::from_raw(payload) }.body;
    if catch_unwind(AssertUnwindSafe(body)).is_err() {
        // Rank bodies catch their own panics and stash the payload; a
        // panic reaching here would unwind into assembly frames, which is
        // undefined behaviour. Die loudly instead.
        eprintln!("fatal: panic escaped a fiber body; aborting");
        std::process::abort();
    }
    let f = CURRENT.with(std::cell::Cell::get);
    // SAFETY: a finishing fiber is by definition the CURRENT one.
    unsafe {
        (*f).finished = true;
    }
    loop {
        fiber_yield();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn boxed<'a>(f: impl FnOnce() + Send + 'a) -> Box<dyn FnOnce() + Send + 'a> {
        Box::new(f)
    }

    #[test]
    fn runs_to_completion_without_yield() {
        let hits = AtomicU64::new(0);
        let mut fib = unsafe {
            Fiber::new_scoped(
                256 * 1024,
                boxed(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                }),
            )
        };
        assert!(fib.resume());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn yields_and_resumes_preserving_locals() {
        let trace = std::sync::Mutex::new(Vec::new());
        let mut fib = unsafe {
            Fiber::new_scoped(
                256 * 1024,
                boxed(|| {
                    // Locals (incl. an FP value) must survive the switch.
                    let mut acc = 1.5f64;
                    for i in 0..3u64 {
                        trace.lock().unwrap().push((i, acc));
                        acc = acc * 2.0 + i as f64;
                        fiber_yield();
                    }
                    trace.lock().unwrap().push((99, acc));
                }),
            )
        };
        let mut resumes = 0;
        while !fib.resume() {
            resumes += 1;
            assert!(resumes < 10, "fiber never finished");
        }
        let t = trace.lock().unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], (0, 1.5));
        assert_eq!(t[3].0, 99);
        assert_eq!(t[3].1, ((1.5 * 2.0) * 2.0 + 1.0) * 2.0 + 2.0);
    }

    #[test]
    fn interleaves_many_fibers() {
        let order = std::sync::Mutex::new(Vec::new());
        let order = &order;
        let mut fibers: Vec<Fiber> = (0..8u32)
            .map(|id| unsafe {
                Fiber::new_scoped(
                    128 * 1024,
                    boxed(move || {
                        for round in 0..4u32 {
                            order.lock().unwrap().push((round, id));
                            fiber_yield();
                        }
                    }),
                )
            })
            .collect();
        // Round-robin until all finish.
        let mut live = fibers.len();
        while live > 0 {
            for f in &mut fibers {
                if !f.finished && f.resume() {
                    live -= 1;
                }
            }
        }
        let o = order.lock().unwrap();
        assert_eq!(o.len(), 32);
        // Within each round the fibers ran in creation order.
        for round in 0..4u32 {
            let ids: Vec<u32> =
                o.iter().filter(|(r, _)| *r == round).map(|(_, id)| *id).collect();
            assert_eq!(ids, (0..8).collect::<Vec<_>>(), "round {round}");
        }
    }

    #[test]
    fn unstarted_fiber_drop_frees_payload() {
        let guard = std::sync::Arc::new(());
        let g2 = guard.clone();
        let fib = unsafe { Fiber::new_scoped(128 * 1024, boxed(move || drop(g2))) };
        drop(fib);
        assert_eq!(std::sync::Arc::strong_count(&guard), 1);
    }

    #[test]
    fn on_fiber_reports_context() {
        assert!(!on_fiber());
        let saw = AtomicU64::new(0);
        let mut fib = unsafe {
            Fiber::new_scoped(
                128 * 1024,
                boxed(|| {
                    saw.store(u64::from(on_fiber()), Ordering::SeqCst);
                }),
            )
        };
        assert!(fib.resume());
        assert_eq!(saw.load(Ordering::SeqCst), 1);
        assert!(!on_fiber());
    }

    #[test]
    fn caught_panic_inside_body_is_contained() {
        // The *body closure* catches its own panic (as rank bodies do);
        // the fiber machinery only sees a clean return.
        let mut fib = unsafe {
            Fiber::new_scoped(
                256 * 1024,
                boxed(|| {
                    let r = catch_unwind(|| panic!("contained"));
                    assert!(r.is_err());
                }),
            )
        };
        assert!(fib.resume());
    }
}
