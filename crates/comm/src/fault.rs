//! Deterministic fault injection for the simulated transport.
//!
//! The paper's machines were not polite: Loki and Hyglac ran MPI over
//! fast ethernet that drops, delays and reorders packets, and a multi-hour
//! ASCI Red run sees transient node stalls. A [`FaultPlan`] reproduces that
//! hostility *deterministically*: every fault decision is a pure function
//! of the plan's seed and the message's flow identity `(src, dst, seq,
//! attempt)`, never of wall-clock or arrival interleaving — so a failing
//! fault run replays exactly from its seed, the same way a
//! [`crate::sched::FuzzScheduler`] schedule replays.
//!
//! The plan decides; the reliable transport in [`crate::reliable`] recovers.
//! `hot-analyze faults` crosses fault seeds with fuzzed schedules and
//! asserts results stay bitwise identical to a fault-free run.

use std::sync::Mutex;

/// Per-run fault-injection rates and bounds. All probabilities are in
/// `[0, 1]` and evaluated independently per frame.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed every fault decision derives from.
    pub seed: u64,
    /// Probability a frame is dropped on the wire.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame is held back (reordering past later traffic).
    pub delay: f64,
    /// Maximum hold-back in subsequent-delivery slots (bounded delay; the
    /// transport may force-release a held frame once a receiver needs it).
    pub max_delay_slots: u32,
    /// Probability exactly one bit of the frame is flipped in flight.
    pub corrupt: f64,
    /// Probability a rank stalls transiently at a channel operation.
    pub stall: f64,
    /// A frame is injected with faults at most this many times; the
    /// retransmission after that is delivered clean. Bounds recovery work
    /// so every run terminates (a real network's loss bursts are finite
    /// too).
    pub max_faults_per_frame: u32,
}

impl FaultConfig {
    /// A fault-free plan (all rates zero) under `seed`. Useful for
    /// measuring the overhead of the reliability machinery itself.
    #[must_use]
    pub fn clean(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay_slots: 0,
            corrupt: 0.0,
            stall: 0.0,
            max_faults_per_frame: 3,
        }
    }

    /// The hostile defaults `hot-analyze faults` runs under: every fault
    /// class at ≥ 10%, bounded delay of 4 slots.
    #[must_use]
    pub fn hostile(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop: 0.15,
            duplicate: 0.15,
            delay: 0.15,
            max_delay_slots: 4,
            corrupt: 0.10,
            stall: 0.10,
            max_faults_per_frame: 3,
        }
    }
}

/// What the plan decided for one `(src, dst, seq, attempt)` frame
/// transmission. At most one wire fault applies per attempt — like a real
/// network, a packet is lost *or* corrupted *or* delayed, and duplication
/// rides alongside whichever copy survives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct FaultDecision {
    /// Do not deliver this attempt at all.
    pub drop: bool,
    /// Deliver a second copy of this attempt.
    pub duplicate: bool,
    /// Flip this bit index (modulo frame length) in the delivered copy.
    pub corrupt_bit: Option<u64>,
    /// Hold the frame for this many delivery slots before releasing it.
    pub delay_slots: u32,
}

impl FaultDecision {
    /// True when any wire fault applies.
    #[must_use]
    pub fn is_faulty(&self) -> bool {
        self.drop || self.duplicate || self.corrupt_bit.is_some() || self.delay_slots > 0
    }
}

/// A targeted, test-oriented injection: fault exactly one identified frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Targeted {
    src: u32,
    dst: u32,
    seq: u64,
    decision: FaultDecision,
}

/// Counts of faults the plan actually injected (not merely configured).
/// Used by checkers to reject vacuous passes: a fault run that injected
/// nothing proves nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Frames dropped.
    pub drops: u64,
    /// Extra copies delivered.
    pub duplicates: u64,
    /// Frames with a bit flipped.
    pub corruptions: u64,
    /// Frames held back.
    pub delays: u64,
    /// Rank stalls injected.
    pub stalls: u64,
}

impl InjectedFaults {
    /// Total injected fault events.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.drops + self.duplicates + self.corruptions + self.delays + self.stalls
    }
}

/// A seeded, replayable fault plan: the adversary the reliable transport
/// must beat. Construct one per run and hand it to
/// [`crate::runtime::RunConfig`].
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    targeted: Vec<Targeted>,
    injected: Mutex<InjectedFaults>,
}

/// splitmix64: the same generator the fuzz scheduler uses, so a fault
/// decision is a pure function of `seed ^ identity`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a draw to `[0, 1)`.
fn unit(draw: u64) -> f64 {
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// Plan over `config`.
    #[must_use]
    pub fn new(config: FaultConfig) -> FaultPlan {
        FaultPlan { config, targeted: Vec::new(), injected: Mutex::new(InjectedFaults::default()) }
    }

    /// The configuration this plan draws from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Test hook: additionally apply `decision` to the single frame
    /// identified by `(src, dst, seq)` on its first attempt. Targeted
    /// injections stack on top of (and override) the seeded decision.
    #[must_use]
    pub fn with_targeted(mut self, src: u32, dst: u32, seq: u64, decision: FaultDecision) -> Self {
        self.targeted.push(Targeted { src, dst, seq, decision });
        self
    }

    /// Faults injected so far (monotone over a run).
    #[must_use]
    pub fn injected(&self) -> InjectedFaults {
        *self.injected.lock().expect("fault ledger lock")
    }

    fn draw(&self, what: u64, src: u32, dst: u32, seq: u64, attempt: u32) -> u64 {
        let id = splitmix64(self.config.seed ^ what.rotate_left(48))
            ^ splitmix64(u64::from(src) << 32 | u64::from(dst))
            ^ splitmix64(seq.wrapping_mul(0x9E37_79B9))
            ^ u64::from(attempt);
        splitmix64(id)
    }

    /// Decide the fate of transmission `attempt` of frame `(src, dst,
    /// seq)`. Deterministic: same plan, same identity → same decision.
    /// Attempts at or beyond `max_faults_per_frame` are always clean, so
    /// retransmission converges.
    pub fn decide(&self, src: u32, dst: u32, seq: u64, attempt: u32) -> FaultDecision {
        let mut d = FaultDecision::default();
        if attempt < self.config.max_faults_per_frame {
            // One wire fault class per attempt: drop, else corrupt, else
            // delay. Duplication is decided independently.
            if unit(self.draw(1, src, dst, seq, attempt)) < self.config.drop {
                d.drop = true;
            } else if unit(self.draw(2, src, dst, seq, attempt)) < self.config.corrupt {
                d.corrupt_bit = Some(self.draw(3, src, dst, seq, attempt));
            } else if unit(self.draw(4, src, dst, seq, attempt)) < self.config.delay {
                let span = u64::from(self.config.max_delay_slots.max(1));
                d.delay_slots = 1 + (self.draw(5, src, dst, seq, attempt) % span) as u32;
            }
            if unit(self.draw(6, src, dst, seq, attempt)) < self.config.duplicate {
                d.duplicate = true;
            }
        }
        if attempt == 0 {
            for t in &self.targeted {
                if t.src == src && t.dst == dst && t.seq == seq {
                    d = t.decision;
                }
            }
        }
        let mut inj = self.injected.lock().expect("fault ledger lock");
        if d.drop {
            inj.drops += 1;
        }
        if d.duplicate {
            inj.duplicates += 1;
        }
        if d.corrupt_bit.is_some() {
            inj.corruptions += 1;
        }
        if d.delay_slots > 0 {
            inj.delays += 1;
        }
        d
    }

    /// Decide whether rank `rank` stalls at its `op_index`-th channel
    /// operation. A stall is a scheduling perturbation (extra yield
    /// points), not a wire fault.
    pub fn decide_stall(&self, rank: u32, op_index: u64) -> bool {
        let s = unit(self.draw(7, rank, rank, op_index, 0)) < self.config.stall;
        if s {
            self.injected.lock().expect("fault ledger lock").stalls += 1;
        }
        s
    }

    /// Flip the decided bit in `data` (bit index taken modulo the frame
    /// length, so every byte — header, payload and CRC — is reachable).
    #[must_use]
    pub fn corrupt(data: &[u8], bit: u64) -> Vec<u8> {
        let mut out = data.to_vec();
        if !out.is_empty() {
            let nbits = out.len() as u64 * 8;
            let b = bit % nbits;
            out[(b / 8) as usize] ^= 1 << (b % 8);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(FaultConfig::hostile(7));
        let b = FaultPlan::new(FaultConfig::hostile(7));
        for seq in 0..200 {
            assert_eq!(a.decide(0, 1, seq, 0), b.decide(0, 1, seq, 0));
        }
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn seeds_change_decisions() {
        let a = FaultPlan::new(FaultConfig::hostile(1));
        let b = FaultPlan::new(FaultConfig::hostile(2));
        let mut differ = false;
        for seq in 0..200 {
            if a.decide(0, 1, seq, 0) != b.decide(0, 1, seq, 0) {
                differ = true;
            }
        }
        assert!(differ, "200 frames decided identically under different seeds");
    }

    #[test]
    fn rates_are_roughly_honest() {
        let plan = FaultPlan::new(FaultConfig::hostile(42));
        let n = 4000u64;
        for seq in 0..n {
            let _ = plan.decide(0, 1, seq, 0);
        }
        let inj = plan.injected();
        // 15% drop over 4000 frames: expect ~600, allow wide slack.
        assert!(inj.drops > 300 && inj.drops < 1000, "drops {}", inj.drops);
        assert!(inj.duplicates > 300 && inj.duplicates < 1000, "dups {}", inj.duplicates);
        assert!(inj.corruptions > 150 && inj.corruptions < 800, "corr {}", inj.corruptions);
        assert!(inj.delays > 150 && inj.delays < 800, "delays {}", inj.delays);
    }

    #[test]
    fn clean_config_injects_nothing() {
        let plan = FaultPlan::new(FaultConfig::clean(9));
        for seq in 0..500 {
            assert_eq!(plan.decide(0, 1, seq, 0), FaultDecision::default());
            assert!(!plan.decide_stall(0, seq));
        }
        assert_eq!(plan.injected().total(), 0);
    }

    #[test]
    fn attempts_beyond_cap_are_clean() {
        let cfg = FaultConfig { drop: 1.0, ..FaultConfig::hostile(3) };
        let plan = FaultPlan::new(cfg);
        assert!(plan.decide(0, 1, 0, 0).drop);
        assert!(plan.decide(0, 1, 0, 1).drop);
        assert!(plan.decide(0, 1, 0, 2).drop);
        assert_eq!(plan.decide(0, 1, 0, 3), FaultDecision::default());
    }

    #[test]
    fn targeted_overrides_seeded_decision() {
        let plan = FaultPlan::new(FaultConfig::clean(0)).with_targeted(
            2,
            5,
            11,
            FaultDecision { corrupt_bit: Some(77), ..FaultDecision::default() },
        );
        assert_eq!(plan.decide(2, 5, 11, 0).corrupt_bit, Some(77));
        assert_eq!(plan.decide(2, 5, 12, 0), FaultDecision::default());
        // Retransmission (attempt 1) of the targeted frame is clean.
        assert_eq!(plan.decide(2, 5, 11, 1), FaultDecision::default());
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let data = vec![0u8; 16];
        for bit in [0u64, 7, 8, 127, 128, 1000] {
            let bad = FaultPlan::corrupt(&data, bit);
            let flipped: u32 = bad.iter().map(|b| b.count_ones()).sum();
            assert_eq!(flipped, 1, "bit {bit}");
        }
    }
}
