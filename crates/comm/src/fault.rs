//! Deterministic fault injection for the simulated transport.
//!
//! The paper's machines were not polite: Loki and Hyglac ran MPI over
//! fast ethernet that drops, delays and reorders packets, and a multi-hour
//! ASCI Red run sees transient node stalls. A [`FaultPlan`] reproduces that
//! hostility *deterministically*: every fault decision is a pure function
//! of the plan's seed and the message's flow identity `(src, dst, seq,
//! attempt)`, never of wall-clock or arrival interleaving — so a failing
//! fault run replays exactly from its seed, the same way a
//! [`crate::sched::FuzzScheduler`] schedule replays.
//!
//! The plan decides; the reliable transport in [`crate::reliable`] recovers.
//! `hot-analyze faults` crosses fault seeds with fuzzed schedules and
//! asserts results stay bitwise identical to a fault-free run.

use std::sync::{Arc, Mutex};

/// Per-run fault-injection rates and bounds. All probabilities are in
/// `[0, 1]` and evaluated independently per frame.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed every fault decision derives from.
    pub seed: u64,
    /// Probability a frame is dropped on the wire.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame is held back (reordering past later traffic).
    pub delay: f64,
    /// Maximum hold-back in subsequent-delivery slots (bounded delay; the
    /// transport may force-release a held frame once a receiver needs it).
    pub max_delay_slots: u32,
    /// Probability exactly one bit of the frame is flipped in flight.
    pub corrupt: f64,
    /// Probability a rank stalls transiently at a channel operation.
    pub stall: f64,
    /// A frame is injected with faults at most this many times; the
    /// retransmission after that is delivered clean. Bounds recovery work
    /// so every run terminates (a real network's loss bursts are finite
    /// too).
    pub max_faults_per_frame: u32,
    /// Probability a rank is killed (crash-stop) during the run. Unlike a
    /// stall, a killed rank never comes back: it silently stops sending
    /// and acking, exactly like a node losing power mid-job.
    pub kill: f64,
    /// Model-clock window `[lo, hi)` (in per-rank channel-operation
    /// counts) a seeded kill time is drawn from. Channel-op counts are a
    /// schedule-independent clock: the same program reaches op `t` at the
    /// same logical point under every interleaving.
    pub kill_window: (u64, u64),
}

impl FaultConfig {
    /// A fault-free plan (all rates zero) under `seed`. Useful for
    /// measuring the overhead of the reliability machinery itself.
    #[must_use]
    pub fn clean(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay_slots: 0,
            corrupt: 0.0,
            stall: 0.0,
            max_faults_per_frame: 3,
            kill: 0.0,
            kill_window: (0, 0),
        }
    }

    /// The hostile defaults `hot-analyze faults` runs under: every fault
    /// class at ≥ 10%, bounded delay of 4 slots.
    #[must_use]
    pub fn hostile(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop: 0.15,
            duplicate: 0.15,
            delay: 0.15,
            max_delay_slots: 4,
            corrupt: 0.10,
            stall: 0.10,
            max_faults_per_frame: 3,
            // Hostile plans stay crash-free: every message-level fault is
            // recoverable in-run, so `hot-analyze faults` can demand the
            // run *completes* bitwise-identically. Kills abort the run and
            // need a supervisor; they are armed explicitly.
            kill: 0.0,
            kill_window: (0, 0),
        }
    }

    /// A crash-stop plan: no message-level faults, but each rank dies with
    /// probability `kill` at a seeded model-clock op in `window`. Used by
    /// `hot-analyze kills` to cross kill plans with fuzzed schedules.
    #[must_use]
    pub fn lethal(seed: u64, kill: f64, window: (u64, u64)) -> FaultConfig {
        FaultConfig { kill, kill_window: window, ..FaultConfig::clean(seed) }
    }

    /// True when this configuration can kill ranks (seeded kills enabled).
    /// Targeted kills added via [`FaultPlan::with_rank_kill_at_op`] /
    /// [`FaultPlan::with_rank_kill_at_epoch`] arm the plan too — see
    /// [`FaultPlan::kill_armed`].
    #[must_use]
    pub fn kills_enabled(&self) -> bool {
        self.kill > 0.0 && self.kill_window.1 > self.kill_window.0
    }

    // Per-field builders, so call sites tweak one knob off a named base
    // (`FaultConfig::clean(seed).with_drop(0.2)`) instead of spelling the
    // whole struct. Same idiom as `WalkConfig` / `DistOptions`.

    /// Replace the decision seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the frame-drop probability.
    #[must_use]
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Set the frame-duplication probability.
    #[must_use]
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Set the hold-back probability and its bound in delivery slots.
    #[must_use]
    pub fn with_delay(mut self, p: f64, max_slots: u32) -> Self {
        self.delay = p;
        self.max_delay_slots = max_slots;
        self
    }

    /// Set the single-bit corruption probability.
    #[must_use]
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Set the transient-stall probability.
    #[must_use]
    pub fn with_stall(mut self, p: f64) -> Self {
        self.stall = p;
        self
    }

    /// Arm seeded crash-stop kills: each rank dies with probability `p` at
    /// a seeded model-clock op inside `window`.
    #[must_use]
    pub fn with_kill(mut self, p: f64, window: (u64, u64)) -> Self {
        self.kill = p;
        self.kill_window = window;
        self
    }
}

/// `Default` is the fault-free configuration under seed 0 —
/// [`FaultConfig::clean`]`(0)` — so `FaultConfig::default().with_drop(0.1)`
/// reads like the other option structs.
impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::clean(0)
    }
}

/// What the plan decided for one `(src, dst, seq, attempt)` frame
/// transmission. At most one wire fault applies per attempt — like a real
/// network, a packet is lost *or* corrupted *or* delayed, and duplication
/// rides alongside whichever copy survives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct FaultDecision {
    /// Do not deliver this attempt at all.
    pub drop: bool,
    /// Deliver a second copy of this attempt.
    pub duplicate: bool,
    /// Flip this bit index (modulo frame length) in the delivered copy.
    pub corrupt_bit: Option<u64>,
    /// Hold the frame for this many delivery slots before releasing it.
    pub delay_slots: u32,
}

impl FaultDecision {
    /// True when any wire fault applies.
    #[must_use]
    pub fn is_faulty(&self) -> bool {
        self.drop || self.duplicate || self.corrupt_bit.is_some() || self.delay_slots > 0
    }
}

/// A targeted, test-oriented injection: fault exactly one identified frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Targeted {
    src: u32,
    dst: u32,
    seq: u64,
    decision: FaultDecision,
}

/// Counts of faults the plan actually injected (not merely configured).
/// Used by checkers to reject vacuous passes: a fault run that injected
/// nothing proves nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Frames dropped.
    pub drops: u64,
    /// Extra copies delivered.
    pub duplicates: u64,
    /// Frames with a bit flipped.
    pub corruptions: u64,
    /// Frames held back.
    pub delays: u64,
    /// Rank stalls injected.
    pub stalls: u64,
    /// Ranks killed (crash-stop).
    pub kills: u64,
}

impl InjectedFaults {
    /// Total injected fault events.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.drops + self.duplicates + self.corruptions + self.delays + self.stalls + self.kills
    }
}

/// Where in a rank's execution a kill fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillSite {
    /// At the rank's n-th channel operation (seeded or op-targeted kills).
    Op(u64),
    /// At an application-declared kill point ([`crate::Comm::kill_point`]);
    /// the supervisor uses step-indexed epochs so a kill lands at an exact
    /// model-clock position relative to checkpoint boundaries.
    Epoch(u64),
}

/// One rank death the plan actually carried out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillRecord {
    /// The rank that died.
    pub rank: u32,
    /// Where its execution stopped.
    pub site: KillSite,
}

/// How a survivor concluded a peer was dead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectionPath {
    /// Heartbeat/ack silence escalated through suspect to confirmed-dead
    /// in the reliable transport's per-peer detector.
    Timeout,
    /// The serialized fuzz scheduler proved global quiescence while a
    /// rank was down — the analogue of the process manager reaping a dead
    /// process and broadcasting the failure.
    Quiescence,
}

/// One confirmed-death event observed by a survivor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetectionRecord {
    /// The rank that detected the death.
    pub by: u32,
    /// The rank it confirmed dead.
    pub dead: u32,
    /// Detector ticks (pump rounds with a frozen peer clock) it took; the
    /// detection bound is `ticks × heartbeat interval` on the model clock.
    pub ticks: u64,
    /// Which mechanism confirmed it.
    pub via: DetectionPath,
}

/// Shared observability handle for a [`FaultPlan`]: the injection ledger
/// plus kill/detection event logs. The plan itself moves into the
/// transport when a run starts; a supervisor keeps a clone of this `Arc`
/// so it can still read what happened after the run aborts by panic.
#[derive(Debug, Default)]
pub struct FaultMonitor {
    injected: Mutex<InjectedFaults>,
    kills: Mutex<Vec<KillRecord>>,
    detections: Mutex<Vec<DetectionRecord>>,
}

impl FaultMonitor {
    /// Faults injected so far (monotone over a run).
    #[must_use]
    pub fn injected(&self) -> InjectedFaults {
        *self.injected.lock().expect("fault ledger lock")
    }

    /// Kills that actually fired, in firing order.
    #[must_use]
    pub fn kills(&self) -> Vec<KillRecord> {
        self.kills.lock().expect("kill ledger lock").clone()
    }

    /// Number of kills that actually fired.
    #[must_use]
    pub fn kills_fired(&self) -> u64 {
        self.kills.lock().expect("kill ledger lock").len() as u64
    }

    /// Confirmed-death events recorded by survivors.
    #[must_use]
    pub fn detections(&self) -> Vec<DetectionRecord> {
        self.detections.lock().expect("detection ledger lock").clone()
    }

    /// Record that `rank` died at `site`. Called by the runtime when the
    /// kill fires (the decision itself is a pure query).
    pub fn record_kill(&self, rank: u32, site: KillSite) {
        self.kills.lock().expect("kill ledger lock").push(KillRecord { rank, site });
        self.injected.lock().expect("fault ledger lock").kills += 1;
    }

    /// Record that `by` confirmed `dead` dead.
    pub fn record_detection(&self, by: u32, dead: u32, ticks: u64, via: DetectionPath) {
        self.detections
            .lock()
            .expect("detection ledger lock")
            .push(DetectionRecord { by, dead, ticks, via });
    }
}

/// A seeded, replayable fault plan: the adversary the reliable transport
/// must beat. Construct one per run and hand it to
/// [`crate::runtime::RunConfig`].
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    targeted: Vec<Targeted>,
    kill_ops: Vec<(u32, u64)>,
    kill_epochs: Vec<(u32, u64)>,
    monitor: Arc<FaultMonitor>,
}

/// splitmix64: the same generator the fuzz scheduler uses, so a fault
/// decision is a pure function of `seed ^ identity`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a draw to `[0, 1)`.
fn unit(draw: u64) -> f64 {
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// Plan over `config`.
    #[must_use]
    pub fn new(config: FaultConfig) -> FaultPlan {
        FaultPlan {
            config,
            targeted: Vec::new(),
            kill_ops: Vec::new(),
            kill_epochs: Vec::new(),
            monitor: Arc::new(FaultMonitor::default()),
        }
    }

    /// The configuration this plan draws from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Test hook: additionally apply `decision` to the single frame
    /// identified by `(src, dst, seq)` on its first attempt. Targeted
    /// injections stack on top of (and override) the seeded decision.
    #[must_use]
    pub fn with_targeted(mut self, src: u32, dst: u32, seq: u64, decision: FaultDecision) -> Self {
        self.targeted.push(Targeted { src, dst, seq, decision });
        self
    }

    /// Test/supervisor hook: kill `rank` when its per-rank channel-op
    /// clock reaches `op`. Targeted kills stack with seeded ones.
    #[must_use]
    pub fn with_rank_kill_at_op(mut self, rank: u32, op: u64) -> Self {
        self.kill_ops.push((rank, op));
        self
    }

    /// Supervisor hook: kill `rank` when it executes
    /// [`crate::Comm::kill_point`] with this `epoch`. Epochs let the
    /// supervisor place deaths at exact step boundaries (or mid-step)
    /// relative to its checkpoint cadence.
    #[must_use]
    pub fn with_rank_kill_at_epoch(mut self, rank: u32, epoch: u64) -> Self {
        self.kill_epochs.push((rank, epoch));
        self
    }

    /// True when this plan can kill ranks: the runtime arms failure
    /// detection (and timed scheduler waits) only for such plans, so
    /// kill-free runs behave exactly as before.
    #[must_use]
    pub fn kill_armed(&self) -> bool {
        self.config.kills_enabled() || !self.kill_ops.is_empty() || !self.kill_epochs.is_empty()
    }

    /// The seeded model-clock op at which `rank` dies, if any: a pure
    /// function of `(seed, rank)`, like every other fault decision.
    /// Targeted op-kills override the seeded draw.
    #[must_use]
    pub fn kill_time(&self, rank: u32) -> Option<u64> {
        if let Some(&(_, op)) = self.kill_ops.iter().find(|&&(r, _)| r == rank) {
            return Some(op);
        }
        let (lo, hi) = self.config.kill_window;
        if self.config.kills_enabled() && unit(self.draw(8, rank, rank, 0, 0)) < self.config.kill {
            Some(lo + self.draw(9, rank, rank, 0, 0) % (hi - lo))
        } else {
            None
        }
    }

    /// The kill-point epoch at which `rank` dies, if any (targeted only).
    #[must_use]
    pub fn kill_epoch(&self, rank: u32) -> Option<u64> {
        self.kill_epochs.iter().find(|&&(r, _)| r == rank).map(|&(_, e)| e)
    }

    /// The shared observability handle: injection ledger + kill/detection
    /// logs. Clone this before handing the plan to a run; it outlives the
    /// run even when the run aborts by panic.
    #[must_use]
    pub fn monitor(&self) -> Arc<FaultMonitor> {
        Arc::clone(&self.monitor)
    }

    /// Faults injected so far (monotone over a run).
    #[must_use]
    pub fn injected(&self) -> InjectedFaults {
        self.monitor.injected()
    }

    fn draw(&self, what: u64, src: u32, dst: u32, seq: u64, attempt: u32) -> u64 {
        let id = splitmix64(self.config.seed ^ what.rotate_left(48))
            ^ splitmix64(u64::from(src) << 32 | u64::from(dst))
            ^ splitmix64(seq.wrapping_mul(0x9E37_79B9))
            ^ u64::from(attempt);
        splitmix64(id)
    }

    /// Decide the fate of transmission `attempt` of frame `(src, dst,
    /// seq)`. Deterministic: same plan, same identity → same decision.
    /// Attempts at or beyond `max_faults_per_frame` are always clean, so
    /// retransmission converges.
    pub fn decide(&self, src: u32, dst: u32, seq: u64, attempt: u32) -> FaultDecision {
        let mut d = FaultDecision::default();
        if attempt < self.config.max_faults_per_frame {
            // One wire fault class per attempt: drop, else corrupt, else
            // delay. Duplication is decided independently.
            if unit(self.draw(1, src, dst, seq, attempt)) < self.config.drop {
                d.drop = true;
            } else if unit(self.draw(2, src, dst, seq, attempt)) < self.config.corrupt {
                d.corrupt_bit = Some(self.draw(3, src, dst, seq, attempt));
            } else if unit(self.draw(4, src, dst, seq, attempt)) < self.config.delay {
                let span = u64::from(self.config.max_delay_slots.max(1));
                d.delay_slots = 1 + (self.draw(5, src, dst, seq, attempt) % span) as u32;
            }
            if unit(self.draw(6, src, dst, seq, attempt)) < self.config.duplicate {
                d.duplicate = true;
            }
        }
        if attempt == 0 {
            for t in &self.targeted {
                if t.src == src && t.dst == dst && t.seq == seq {
                    d = t.decision;
                }
            }
        }
        let mut inj = self.monitor.injected.lock().expect("fault ledger lock");
        if d.drop {
            inj.drops += 1;
        }
        if d.duplicate {
            inj.duplicates += 1;
        }
        if d.corrupt_bit.is_some() {
            inj.corruptions += 1;
        }
        if d.delay_slots > 0 {
            inj.delays += 1;
        }
        d
    }

    /// Decide whether rank `rank` stalls at its `op_index`-th channel
    /// operation. A stall is a scheduling perturbation (extra yield
    /// points), not a wire fault.
    pub fn decide_stall(&self, rank: u32, op_index: u64) -> bool {
        let s = unit(self.draw(7, rank, rank, op_index, 0)) < self.config.stall;
        if s {
            self.monitor.injected.lock().expect("fault ledger lock").stalls += 1;
        }
        s
    }

    /// Flip the decided bit in `data` (bit index taken modulo the frame
    /// length, so every byte — header, payload and CRC — is reachable).
    #[must_use]
    pub fn corrupt(data: &[u8], bit: u64) -> Vec<u8> {
        let mut out = data.to_vec();
        if !out.is_empty() {
            let nbits = out.len() as u64 * 8;
            let b = bit % nbits;
            out[(b / 8) as usize] ^= 1 << (b % 8);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(FaultConfig::hostile(7));
        let b = FaultPlan::new(FaultConfig::hostile(7));
        for seq in 0..200 {
            assert_eq!(a.decide(0, 1, seq, 0), b.decide(0, 1, seq, 0));
        }
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn seeds_change_decisions() {
        let a = FaultPlan::new(FaultConfig::hostile(1));
        let b = FaultPlan::new(FaultConfig::hostile(2));
        let mut differ = false;
        for seq in 0..200 {
            if a.decide(0, 1, seq, 0) != b.decide(0, 1, seq, 0) {
                differ = true;
            }
        }
        assert!(differ, "200 frames decided identically under different seeds");
    }

    #[test]
    fn rates_are_roughly_honest() {
        let plan = FaultPlan::new(FaultConfig::hostile(42));
        let n = 4000u64;
        for seq in 0..n {
            let _ = plan.decide(0, 1, seq, 0);
        }
        let inj = plan.injected();
        // 15% drop over 4000 frames: expect ~600, allow wide slack.
        assert!(inj.drops > 300 && inj.drops < 1000, "drops {}", inj.drops);
        assert!(inj.duplicates > 300 && inj.duplicates < 1000, "dups {}", inj.duplicates);
        assert!(inj.corruptions > 150 && inj.corruptions < 800, "corr {}", inj.corruptions);
        assert!(inj.delays > 150 && inj.delays < 800, "delays {}", inj.delays);
    }

    #[test]
    fn clean_config_injects_nothing() {
        let plan = FaultPlan::new(FaultConfig::clean(9));
        for seq in 0..500 {
            assert_eq!(plan.decide(0, 1, seq, 0), FaultDecision::default());
            assert!(!plan.decide_stall(0, seq));
        }
        assert_eq!(plan.injected().total(), 0);
    }

    #[test]
    fn attempts_beyond_cap_are_clean() {
        let cfg = FaultConfig { drop: 1.0, ..FaultConfig::hostile(3) };
        let plan = FaultPlan::new(cfg);
        assert!(plan.decide(0, 1, 0, 0).drop);
        assert!(plan.decide(0, 1, 0, 1).drop);
        assert!(plan.decide(0, 1, 0, 2).drop);
        assert_eq!(plan.decide(0, 1, 0, 3), FaultDecision::default());
    }

    #[test]
    fn targeted_overrides_seeded_decision() {
        let plan = FaultPlan::new(FaultConfig::clean(0)).with_targeted(
            2,
            5,
            11,
            FaultDecision { corrupt_bit: Some(77), ..FaultDecision::default() },
        );
        assert_eq!(plan.decide(2, 5, 11, 0).corrupt_bit, Some(77));
        assert_eq!(plan.decide(2, 5, 12, 0), FaultDecision::default());
        // Retransmission (attempt 1) of the targeted frame is clean.
        assert_eq!(plan.decide(2, 5, 11, 1), FaultDecision::default());
    }

    #[test]
    fn kill_times_are_pure_functions_of_seed_and_rank() {
        let a = FaultPlan::new(FaultConfig::lethal(11, 0.5, (10, 200)));
        let b = FaultPlan::new(FaultConfig::lethal(11, 0.5, (10, 200)));
        let mut any = false;
        for rank in 0..32 {
            let t = a.kill_time(rank);
            assert_eq!(t, b.kill_time(rank));
            if let Some(op) = t {
                any = true;
                assert!((10..200).contains(&op), "kill op {op} outside window");
            }
        }
        assert!(any, "0 of 32 ranks drew a kill at 50%");
        // Querying is pure: nothing is recorded until a kill fires.
        assert_eq!(a.monitor().kills_fired(), 0);
        assert_eq!(a.injected().kills, 0);
    }

    #[test]
    fn kill_seeds_change_victims() {
        let a = FaultPlan::new(FaultConfig::lethal(1, 0.5, (0, 100)));
        let b = FaultPlan::new(FaultConfig::lethal(2, 0.5, (0, 100)));
        let differ = (0..64).any(|r| a.kill_time(r) != b.kill_time(r));
        assert!(differ, "64 ranks drew identical kills under different seeds");
    }

    #[test]
    fn targeted_kills_arm_and_override() {
        let plan = FaultPlan::new(FaultConfig::clean(0))
            .with_rank_kill_at_op(1, 42)
            .with_rank_kill_at_epoch(2, 7);
        assert!(plan.kill_armed());
        assert_eq!(plan.kill_time(1), Some(42));
        assert_eq!(plan.kill_time(0), None);
        assert_eq!(plan.kill_epoch(2), Some(7));
        assert_eq!(plan.kill_epoch(1), None);
        assert!(!FaultPlan::new(FaultConfig::hostile(3)).kill_armed());
    }

    #[test]
    fn monitor_outlives_the_plan_and_records_events() {
        let plan = FaultPlan::new(FaultConfig::clean(0)).with_rank_kill_at_op(0, 5);
        let mon = plan.monitor();
        mon.record_kill(0, KillSite::Op(5));
        mon.record_detection(1, 0, 64, DetectionPath::Timeout);
        drop(plan);
        assert_eq!(mon.kills_fired(), 1);
        assert_eq!(mon.kills(), vec![KillRecord { rank: 0, site: KillSite::Op(5) }]);
        assert_eq!(mon.injected().kills, 1);
        let d = mon.detections();
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].by, d[0].dead, d[0].via), (1, 0, DetectionPath::Timeout));
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let data = vec![0u8; 16];
        for bit in [0u64, 7, 8, 127, 128, 1000] {
            let bad = FaultPlan::corrupt(&data, bit);
            let flipped: u32 = bad.iter().map(|b| b.count_ones()).sum();
            assert_eq!(flipped, 1, "bit {bit}");
        }
    }
}
