//! The simulated parallel machine: one OS thread per rank, message passing
//! with MPI-style `(source, tag)` matching.
//!
//! The paper's machines (ASCI Red, Loki, Hyglac) are distributed-memory
//! message-passing systems programmed against NX/MPI. This module provides
//! the equivalent substrate so the HOT algorithms run with their real
//! communication structure: ranks share nothing, every byte crosses an
//! explicit channel, and the per-rank [`TrafficStats`] feed the 1997 machine
//! models in `hot-machine` that convert message counts into predicted
//! wall-clock on the paper's networks.

use crate::wire::{from_bytes, to_bytes, Wire};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Highest tag available to applications; larger tags are reserved for
/// collectives and runtime control traffic.
pub const MAX_USER_TAG: u32 = 0x7fff_ffff;

/// Tag carried by teardown poison messages emitted when a rank panics.
const POISON_TAG: u32 = u32::MAX;

/// One message in flight.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: u32,
    /// Message tag.
    pub tag: u32,
    /// Encoded payload.
    pub data: Bytes,
}

/// Per-rank communication counters. The machine models consume these; the
/// paper's own performance discussion is in exactly these terms (message
/// counts, bytes, bandwidth-limited phases).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Point-to-point messages sent.
    pub sends: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub recvs: u64,
    /// Payload bytes received.
    pub bytes_recvd: u64,
    /// Largest single message sent.
    pub max_message: u64,
}

impl TrafficStats {
    /// Element-wise accumulate.
    pub fn merge(&mut self, o: &TrafficStats) {
        self.sends += o.sends;
        self.bytes_sent += o.bytes_sent;
        self.recvs += o.recvs;
        self.bytes_recvd += o.bytes_recvd;
        self.max_message = self.max_message.max(o.max_message);
    }

    /// Difference since an earlier snapshot (for per-phase accounting).
    pub fn since(&self, earlier: &TrafficStats) -> TrafficStats {
        TrafficStats {
            sends: self.sends - earlier.sends,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            recvs: self.recvs - earlier.recvs,
            bytes_recvd: self.bytes_recvd - earlier.bytes_recvd,
            max_message: self.max_message,
        }
    }
}

struct Shared {
    np: u32,
    senders: Vec<Sender<Envelope>>,
}

/// A rank's handle onto the simulated machine.
///
/// Not `Clone` and not `Sync`: exactly one thread drives each rank, as on
/// the real machines.
pub struct Comm {
    rank: u32,
    shared: Arc<Shared>,
    rx: Receiver<Envelope>,
    pending: VecDeque<Envelope>,
    stats: TrafficStats,
}

impl Comm {
    /// This rank's id, `0..size()`.
    #[inline]
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of ranks in the machine.
    #[inline]
    pub fn size(&self) -> u32 {
        self.shared.np
    }

    /// Communication counters so far.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Send encoded bytes to `dst` with `tag`. Asynchronous: never blocks
    /// (infinite buffering, like an eager-protocol MPI send of modest size).
    pub fn send_bytes(&mut self, dst: u32, tag: u32, data: Bytes) {
        assert!(dst < self.shared.np, "send to rank {dst} of {}", self.shared.np);
        self.stats.sends += 1;
        self.stats.bytes_sent += data.len() as u64;
        self.stats.max_message = self.stats.max_message.max(data.len() as u64);
        let env = Envelope { src: self.rank, tag, data };
        // The receiver only disappears after World::run joins every thread,
        // or when tearing down after a panic; either way a failed send can
        // only happen during collapse.
        let _ = self.shared.senders[dst as usize].send(env);
    }

    /// Send a typed value.
    pub fn send<T: Wire>(&mut self, dst: u32, tag: u32, v: &T) {
        debug_assert!(tag <= MAX_USER_TAG || is_internal_tag(tag));
        self.send_bytes(dst, tag, to_bytes(v));
    }

    /// Blocking receive matching `src` (or any source when `None`) and
    /// `tag`. Returns the actual source and payload.
    pub fn recv_bytes(&mut self, src: Option<u32>, tag: u32) -> (u32, Bytes) {
        // First scan messages that arrived earlier but did not match.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.tag == tag && src.is_none_or(|s| s == e.src))
        {
            let e = self.pending.remove(pos).expect("indexed scan");
            self.stats.recvs += 1;
            self.stats.bytes_recvd += e.data.len() as u64;
            return (e.src, e.data);
        }
        loop {
            let e = self
                .rx
                .recv()
                .expect("all peer ranks vanished while blocked in recv");
            if e.tag == POISON_TAG {
                panic!("rank {}: peer rank {} died (poison received)", self.rank, e.src);
            }
            if e.tag == tag && src.is_none_or(|s| s == e.src) {
                self.stats.recvs += 1;
                self.stats.bytes_recvd += e.data.len() as u64;
                return (e.src, e.data);
            }
            self.pending.push_back(e);
        }
    }

    /// Blocking typed receive from a specific source.
    pub fn recv<T: Wire>(&mut self, src: u32, tag: u32) -> T {
        let (_, data) = self.recv_bytes(Some(src), tag);
        from_bytes(data)
    }

    /// Blocking typed receive from any source.
    pub fn recv_any<T: Wire>(&mut self, tag: u32) -> (u32, T) {
        let (src, data) = self.recv_bytes(None, tag);
        (src, from_bytes(data))
    }

    /// Non-blocking probe: pull one matching message if immediately
    /// available (pending queue or channel), else `None`.
    pub fn try_recv_bytes(&mut self, src: Option<u32>, tag: u32) -> Option<(u32, Bytes)> {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.tag == tag && src.is_none_or(|s| s == e.src))
        {
            let e = self.pending.remove(pos).expect("indexed scan");
            self.stats.recvs += 1;
            self.stats.bytes_recvd += e.data.len() as u64;
            return Some((e.src, e.data));
        }
        while let Ok(e) = self.rx.try_recv() {
            if e.tag == POISON_TAG {
                panic!("rank {}: peer rank {} died (poison received)", self.rank, e.src);
            }
            let matches = e.tag == tag && src.is_none_or(|s| s == e.src);
            if matches {
                self.stats.recvs += 1;
                self.stats.bytes_recvd += e.data.len() as u64;
                return Some((e.src, e.data));
            }
            self.pending.push_back(e);
        }
        None
    }

    /// Typed non-blocking probe from any source.
    pub fn try_recv_any<T: Wire>(&mut self, tag: u32) -> Option<(u32, T)> {
        self.try_recv_bytes(None, tag).map(|(s, d)| (s, from_bytes(d)))
    }

    /// Exchange with a partner: send then receive (safe under the runtime's
    /// unbounded buffering; mirrors `MPI_Sendrecv`).
    pub fn sendrecv<T: Wire>(&mut self, dst: u32, src: u32, tag: u32, v: &T) -> T {
        self.send(dst, tag, v);
        self.recv(src, tag)
    }
}

#[inline]
fn is_internal_tag(tag: u32) -> bool {
    tag > MAX_USER_TAG
}

impl Drop for Comm {
    fn drop(&mut self) {
        // If this rank is dying of a panic, wake every blocked peer so the
        // whole machine tears down instead of deadlocking.
        if std::thread::panicking() {
            for dst in 0..self.shared.np {
                if dst != self.rank {
                    let _ = self.shared.senders[dst as usize].send(Envelope {
                        src: self.rank,
                        tag: POISON_TAG,
                        data: Bytes::new(),
                    });
                }
            }
        }
    }
}

/// Result of running an SPMD program on the simulated machine.
#[derive(Debug)]
pub struct RunOutput<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Per-rank communication counters, indexed by rank.
    pub stats: Vec<TrafficStats>,
    /// Wall-clock time for the whole run (spawn to last join).
    pub elapsed: Duration,
}

impl<T> RunOutput<T> {
    /// Aggregate traffic over all ranks.
    pub fn total_traffic(&self) -> TrafficStats {
        let mut t = TrafficStats::default();
        for s in &self.stats {
            t.merge(s);
        }
        t
    }
}

/// The simulated machine: spawns `np` ranks and runs `f` on each.
pub struct World;

impl World {
    /// Run an SPMD closure on `np` ranks and gather results.
    ///
    /// Each rank runs on its own OS thread (with an enlarged stack — tree
    /// walks and FFTs recurse). A panic on any rank poisons the others and
    /// propagates out of `run`.
    pub fn run<T, F>(np: u32, f: F) -> RunOutput<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        assert!(np >= 1, "need at least one rank");
        let mut senders = Vec::with_capacity(np as usize);
        let mut receivers = Vec::with_capacity(np as usize);
        for _ in 0..np {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared { np, senders });
        let results: Vec<Mutex<Option<(T, TrafficStats)>>> =
            (0..np).map(|_| Mutex::new(None)).collect();

        let t0 = Instant::now();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(np as usize);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let shared = shared.clone();
                let f = &f;
                let slot = &results[rank];
                let handle = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(16 << 20)
                    .spawn_scoped(scope, move || {
                        let mut comm = Comm {
                            rank: rank as u32,
                            shared,
                            rx,
                            pending: VecDeque::new(),
                            stats: TrafficStats::default(),
                        };
                        let out = f(&mut comm);
                        *slot.lock() = Some((out, comm.stats()));
                    })
                    .expect("spawn rank thread");
                handles.push(handle);
            }
            let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                if let Err(p) = h.join() {
                    panic_payload.get_or_insert(p);
                }
            }
            if let Some(p) = panic_payload {
                std::panic::resume_unwind(p);
            }
        });
        let elapsed = t0.elapsed();

        let mut out_results = Vec::with_capacity(np as usize);
        let mut out_stats = Vec::with_capacity(np as usize);
        for slot in results {
            let (r, s) = slot.into_inner().expect("rank finished without result");
            out_results.push(r);
            out_stats.push(s);
        }
        RunOutput { results: out_results, stats: out_stats, elapsed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank() {
        let out = World::run(1, |c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.size(), 1);
            7u64
        });
        assert_eq!(out.results, vec![7]);
        assert_eq!(out.stats[0], TrafficStats::default());
    }

    #[test]
    fn ping_pong() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 5, &123u64);
                c.recv::<u64>(1, 6)
            } else {
                let v: u64 = c.recv(0, 5);
                c.send(0, 6, &(v * 2));
                v
            }
        });
        assert_eq!(out.results, vec![246, 123]);
        assert_eq!(out.stats[0].sends, 1);
        assert_eq!(out.stats[0].bytes_sent, 8);
        assert_eq!(out.stats[1].recvs, 1);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                c.send(1, 2, &20u32);
                c.send(1, 1, &10u32);
                0
            } else {
                let a: u32 = c.recv(0, 1);
                let b: u32 = c.recv(0, 2);
                assert_eq!((a, b), (10, 20));
                1
            }
        });
        assert_eq!(out.results.len(), 2);
    }

    #[test]
    fn recv_any_source() {
        let out = World::run(4, |c| {
            if c.rank() == 0 {
                let mut sum = 0u64;
                for _ in 0..3 {
                    let (_, v) = c.recv_any::<u64>(9);
                    sum += v;
                }
                sum
            } else {
                c.send(0, 9, &(c.rank() as u64));
                0
            }
        });
        assert_eq!(out.results[0], 1 + 2 + 3);
    }

    #[test]
    fn try_recv_polls() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 3, &55u8);
                0u8
            } else {
                loop {
                    if let Some((src, v)) = c.try_recv_any::<u8>(3) {
                        assert_eq!(src, 0);
                        return v;
                    }
                    std::hint::spin_loop();
                }
            }
        });
        assert_eq!(out.results[1], 55);
    }

    #[test]
    fn sendrecv_ring() {
        let np = 5;
        let out = World::run(np, |c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.sendrecv::<u32>(right, left, 7, &c.rank())
        });
        for r in 0..np {
            assert_eq!(out.results[r as usize], (r + np - 1) % np);
        }
    }

    #[test]
    fn traffic_stats_track_bytes() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                let payload = vec![0u64; 100];
                c.send(1, 1, &payload);
            } else {
                let _: Vec<u64> = c.recv(0, 1);
            }
        });
        assert_eq!(out.stats[0].bytes_sent, 808);
        assert_eq!(out.stats[0].max_message, 808);
        assert_eq!(out.stats[1].bytes_recvd, 808);
        assert_eq!(out.total_traffic().sends, 1);
    }

    #[test]
    fn panicking_rank_tears_down_machine() {
        let result = std::panic::catch_unwind(|| {
            World::run(2, |c| {
                if c.rank() == 0 {
                    // Would block forever without poison teardown.
                    let _: u64 = c.recv(1, 1);
                } else {
                    panic!("rank 1 exploded");
                }
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn stats_since_snapshot() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &1u8);
                let snap = c.stats();
                c.send(1, 1, &2u8);
                c.send(1, 1, &3u8);
                c.stats().since(&snap).sends
            } else {
                for _ in 0..3 {
                    let _: u8 = c.recv(0, 1);
                }
                0
            }
        });
        assert_eq!(out.results[0], 2);
    }
}
