//! The simulated parallel machine: one OS thread per rank, message passing
//! with MPI-style `(source, tag)` matching.
//!
//! The paper's machines (ASCI Red, Loki, Hyglac) are distributed-memory
//! message-passing systems programmed against NX/MPI. This module provides
//! the equivalent substrate so the HOT algorithms run with their real
//! communication structure: ranks share nothing, every byte crosses an
//! explicit [`crate::chan::Mailbox`], and the per-rank [`TrafficStats`]
//! feed the 1997 machine models in `hot-machine` that convert message
//! counts into predicted wall-clock on the paper's networks.
//!
//! Every channel operation passes through a [`crate::sched::Scheduler`]
//! hook. Production runs use [`RealScheduler`] (free OS concurrency); the
//! `hot-analyze schedules` checker swaps in a seeded
//! [`crate::sched::FuzzScheduler`] to serialize ranks, perturb the
//! interleaving reproducibly, prove deadlocks instead of hanging on them,
//! and audit teardown for undrained messages.

use crate::chan::{Mailbox, Scan};
use crate::collectives::{CollectiveShape, AUTO_TREE_MIN_NP};
use crate::events::EventSched;
use crate::fault::{DetectionPath, FaultPlan, InjectedFaults, KillSite};
use crate::reliable::{
    ReliabilityStats, Transport, CONFIRM_DEAD_AFTER_TICKS, DETECT_TICK_MICROS, FRAME_TAG,
};
use crate::sched::{RealScheduler, SchedOp, Scheduler, Want};
use crate::wire::{from_bytes, to_bytes, Wire};
use bytes::Bytes;
use std::fmt;
use std::sync::{Arc, Mutex};
// Wall-clock here times the host machine's run for Gflop/s reporting; the
// simulation itself never reads it (enforced by `hot-analyze lint`).
use std::time::{Duration, Instant};

/// Highest tag available to applications; larger tags are reserved for
/// collectives and runtime control traffic.
pub const MAX_USER_TAG: u32 = 0x7fff_ffff;

/// Tag carried by teardown poison messages emitted when a rank panics.
/// Public so checkers can distinguish expected post-panic poison from a
/// genuinely dropped message when auditing mailboxes at teardown.
pub const POISON_TAG: u32 = u32::MAX;

/// One message in flight.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: u32,
    /// Message tag.
    pub tag: u32,
    /// Encoded payload.
    pub data: Bytes,
}

/// Per-rank communication counters. The machine models consume these; the
/// paper's own performance discussion is in exactly these terms (message
/// counts, bytes, bandwidth-limited phases).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Point-to-point messages sent.
    pub sends: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub recvs: u64,
    /// Payload bytes received.
    pub bytes_recvd: u64,
    /// Largest single message sent.
    pub max_message: u64,
}

impl TrafficStats {
    /// Element-wise accumulate.
    pub fn merge(&mut self, o: &TrafficStats) {
        self.sends += o.sends;
        self.bytes_sent += o.bytes_sent;
        self.recvs += o.recvs;
        self.bytes_recvd += o.bytes_recvd;
        self.max_message = self.max_message.max(o.max_message);
    }

    /// Difference since an earlier snapshot (for per-phase accounting).
    ///
    /// `max_message` is a watermark, not a sum — a two-snapshot difference
    /// cannot recover the interval's own maximum, so the field carries the
    /// *absolute* high-water mark. Per-phase consumers (the trace ledger)
    /// must ignore it; `hot_trace::Ledger::add_traffic` does.
    #[must_use]
    pub fn since(&self, earlier: &TrafficStats) -> TrafficStats {
        TrafficStats {
            sends: self.sends - earlier.sends,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            recvs: self.recvs - earlier.recvs,
            bytes_recvd: self.bytes_recvd - earlier.bytes_recvd,
            max_message: self.max_message,
        }
    }
}

struct Machine {
    np: u32,
    mailboxes: Vec<Mailbox>,
    sched: Arc<dyn Scheduler>,
    /// Reliable transport over a faulty wire; present iff the run installed
    /// a [`FaultPlan`].
    transport: Option<Transport>,
    /// Which allgather algorithm this run uses (ring baseline vs Bruck
    /// log-round); `Auto` resolves by machine size.
    shape: CollectiveShape,
}

/// Panic payload of a rank whose [`FaultPlan`] kill fired: the crash-stop
/// unwind. [`RunConfig::run`] recognizes it and lets the rank vanish
/// silently (no poison, no result) instead of treating it as a bug.
#[derive(Debug)]
pub struct RankKilled {
    /// The rank that died.
    pub rank: u32,
}

/// A rank's handle onto the simulated machine.
///
/// Not `Clone` and not `Sync`: exactly one thread drives each rank, as on
/// the real machines.
pub struct Comm {
    rank: u32,
    machine: Arc<Machine>,
    stats: TrafficStats,
    /// Channel operations performed — the rank's model clock. Indexes the
    /// fault plan's stall and kill draws and, on kill-armed runs, is
    /// published as the rank's heartbeat.
    ops: u64,
    /// Set when this rank's crash-stop kill fires, switching teardown from
    /// the poison protocol to silent death.
    killed: bool,
}

impl Comm {
    /// This rank's id, `0..size()`.
    #[inline]
    #[must_use]
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of ranks in the machine.
    #[inline]
    #[must_use]
    pub fn size(&self) -> u32 {
        self.machine.np
    }

    /// Whether this run's allgather uses the Bruck log-round algorithm
    /// (`true`) or the ring baseline (`false`); `Auto` picks by size.
    pub(crate) fn tree_allgather(&self) -> bool {
        match self.machine.shape {
            CollectiveShape::Auto => self.machine.np >= AUTO_TREE_MIN_NP,
            CollectiveShape::Ring => false,
            CollectiveShape::Tree => true,
        }
    }

    /// Communication counters so far. These are *logical* counters — under
    /// a fault plan, retransmissions, duplicates, acks and frame overhead
    /// are excluded, so the numbers are bitwise-identical to a fault-free
    /// run (see [`Comm::reliability_stats`] for the recovery traffic).
    #[must_use]
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Reliability counters attributed to this rank; all zero when the run
    /// has no fault plan.
    #[must_use]
    pub fn reliability_stats(&self) -> ReliabilityStats {
        self.machine.transport.as_ref().map(|t| t.stats(self.rank)).unwrap_or_default()
    }

    /// Drive reliable-transport progress for this rank: verify and
    /// resequence framed intake, deliver in-order messages, and recover
    /// losses. No-op when the run has no fault plan.
    pub fn pump_transport(&mut self) {
        if let Some(t) = &self.machine.transport {
            t.pump(self.rank, &self.machine.mailboxes[self.rank as usize]);
        }
    }

    /// Fault-plan hook at every channel operation: advance and publish the
    /// model clock, fire a pending crash-stop kill, and possibly stall
    /// this rank by spending extra schedule yields (a transient node
    /// hiccup — the rank loses its turn a few times but performs no I/O).
    fn maybe_stall(&mut self, op: SchedOp) {
        if let Some(t) = &self.machine.transport {
            let idx = self.ops;
            self.ops += 1;
            if t.kill_armed() {
                // Heartbeat: every channel op publishes the rank's clock.
                t.publish_clock(self.rank, self.ops);
                if t.plan.kill_time(self.rank).is_some_and(|at| idx >= at) {
                    self.die(KillSite::Op(idx));
                }
            }
            if t.plan.decide_stall(self.rank, idx) {
                t.note_stall(self.rank);
                for _ in 0..2 {
                    self.machine.sched.yield_point(self.rank, op);
                }
            }
        }
    }

    /// Application-declared kill point: if the run's fault plan scheduled
    /// this rank's death at `epoch`, the rank dies here — before
    /// performing any effect of the epoch. Supervised simulations call
    /// this with step-indexed epochs so a kill lands at an exact position
    /// relative to checkpoint boundaries; a no-op on every other run.
    pub fn kill_point(&mut self, epoch: u64) {
        if let Some(t) = &self.machine.transport {
            if t.kill_armed() && t.plan.kill_epoch(self.rank) == Some(epoch) {
                self.die(KillSite::Epoch(epoch));
            }
        }
    }

    /// Crash-stop: mark this rank dead in the transport (its sends and
    /// retransmissions vanish, its heartbeat freezes), record the kill,
    /// and unwind with the [`RankKilled`] payload. Holds no locks.
    fn die(&mut self, site: KillSite) -> ! {
        let t = self.machine.transport.as_ref().expect("kill fired without transport");
        t.mark_dead(self.rank);
        t.plan.monitor().record_kill(self.rank, site);
        self.killed = true;
        std::panic::panic_any(RankKilled { rank: self.rank });
    }

    /// Send encoded bytes to `dst` with `tag`. Asynchronous: never blocks
    /// (infinite buffering, like an eager-protocol MPI send of modest size).
    pub fn send_bytes(&mut self, dst: u32, tag: u32, data: Bytes) {
        assert!(dst < self.machine.np, "send to rank {dst} of {}", self.machine.np);
        let op = SchedOp::Send { dst, tag };
        self.machine.sched.yield_point(self.rank, op);
        self.maybe_stall(op);
        self.stats.sends += 1;
        self.stats.bytes_sent += data.len() as u64;
        self.stats.max_message = self.stats.max_message.max(data.len() as u64);
        match &self.machine.transport {
            // Poison is a teardown signal, not a message: it bypasses
            // framing and faults so a dying machine always unblocks.
            Some(t) if tag != POISON_TAG => {
                t.on_send(self.rank, dst, tag, &data, &self.machine.mailboxes[dst as usize]);
            }
            _ => {
                self.machine.mailboxes[dst as usize].push(Envelope { src: self.rank, tag, data });
            }
        }
        self.machine.sched.notify(dst);
    }

    /// Send a typed value.
    pub fn send<T: Wire>(&mut self, dst: u32, tag: u32, v: &T) {
        debug_assert!(tag <= MAX_USER_TAG || is_internal_tag(tag));
        let data = to_bytes(v);
        // Byte accounting charges actual encoded length; `wire_size` is the
        // contract every cost model reasons with. They must never diverge.
        debug_assert_eq!(
            data.len(),
            v.wire_size(),
            "Wire impl out of sync: encoded {} bytes, wire_size() says {}",
            data.len(),
            v.wire_size()
        );
        self.send_bytes(dst, tag, data);
    }

    /// Blocking receive matching `src` (or any source when `None`) and
    /// `tag`. Returns the actual source and payload.
    ///
    /// # Panics
    ///
    /// Panics when a peer rank dies (poison teardown) or when the scheduler
    /// proves the machine deadlocked (checker runs only — the production
    /// scheduler blocks forever like a real MPI).
    pub fn recv_bytes(&mut self, src: Option<u32>, tag: u32) -> (u32, Bytes) {
        let op = SchedOp::Recv { src, tag };
        self.machine.sched.yield_point(self.rank, op);
        self.maybe_stall(op);
        let rank = self.rank;
        let transport = self.machine.transport.as_ref();
        let mbox = &self.machine.mailboxes[self.rank as usize];
        loop {
            if let Some(t) = transport {
                t.pump(rank, mbox);
                // The detector runs in the blocked-wait check below, where
                // it cannot panic; the abort it requests is raised here,
                // outside every scheduler and transport lock.
                let confirmed = t.confirmed_dead(rank);
                if !confirmed.is_empty() {
                    panic!(
                        "crash-stop: rank {rank} confirmed rank(s) {confirmed:?} dead \
                         (heartbeat frozen {CONFIRM_DEAD_AFTER_TICKS} intervals while \
                         owing progress); aborting step for rollback recovery"
                    );
                }
            }
            match mbox.take_match(src, tag) {
                Scan::Matched(e) => {
                    self.stats.recvs += 1;
                    self.stats.bytes_recvd += e.data.len() as u64;
                    return (e.src, e.data);
                }
                Scan::Poisoned { src } => {
                    panic!("rank {}: peer rank {src} died (poison received)", self.rank);
                }
                Scan::Empty => {}
            }
            let want = Want { src, tag, queued: mbox.queued_tags() };
            if let Err(deadlock) =
                self.machine.sched.wait_message(self.rank, &want, &mut || {
                    // While blocked, every wake drives transport progress:
                    // a dropped frame's notify lands here and recovery
                    // retransmits it, so loss never wedges a receiver. On
                    // kill-armed runs each wake is also one failure-
                    // detector round; a confirmed death reads as "message
                    // available" so the blocked wait returns and the
                    // receive loop raises the crash-stop abort lock-free.
                    if let Some(t) = transport {
                        t.pump(rank, mbox);
                        t.detect_tick(rank, src);
                        if !t.confirmed_dead(rank).is_empty() {
                            return true;
                        }
                    }
                    mbox.has_match_or_poison(src, tag)
                })
            {
                // The serialized checker proved global quiescence. With a
                // crashed rank that is the failure detector's strongest
                // oracle — the runtime analogue of the process manager
                // reaping a dead process — so classify it as a crash-stop
                // detection rather than a program deadlock.
                if let Some(t) = transport {
                    let dead = t.dead_ranks();
                    if t.kill_armed() && !dead.is_empty() {
                        for &d in &dead {
                            t.plan.monitor().record_detection(
                                rank,
                                d,
                                0,
                                DetectionPath::Quiescence,
                            );
                        }
                        panic!(
                            "crash-stop: rank {rank}: machine quiesced with rank(s) \
                             {dead:?} dead ({deadlock}); aborting step for rollback \
                             recovery"
                        );
                    }
                }
                panic!("rank {}: {deadlock}", self.rank);
            }
        }
    }

    /// Blocking typed receive from a specific source.
    pub fn recv<T: Wire>(&mut self, src: u32, tag: u32) -> T {
        let (_, data) = self.recv_bytes(Some(src), tag);
        from_bytes(data)
    }

    /// Blocking typed receive from any source.
    pub fn recv_any<T: Wire>(&mut self, tag: u32) -> (u32, T) {
        let (src, data) = self.recv_bytes(None, tag);
        (src, from_bytes(data))
    }

    /// Non-blocking probe: pull one matching message if immediately
    /// available, else `None`.
    ///
    /// # Panics
    ///
    /// Panics when a peer rank died and no matching message remains.
    pub fn try_recv_bytes(&mut self, src: Option<u32>, tag: u32) -> Option<(u32, Bytes)> {
        let op = SchedOp::TryRecv { tag };
        self.machine.sched.yield_point(self.rank, op);
        self.maybe_stall(op);
        self.pump_transport();
        match self.machine.mailboxes[self.rank as usize].take_match(src, tag) {
            Scan::Matched(e) => {
                self.stats.recvs += 1;
                self.stats.bytes_recvd += e.data.len() as u64;
                Some((e.src, e.data))
            }
            Scan::Poisoned { src } => {
                panic!("rank {}: peer rank {src} died (poison received)", self.rank)
            }
            Scan::Empty => None,
        }
    }

    /// Typed non-blocking probe from any source.
    pub fn try_recv_any<T: Wire>(&mut self, tag: u32) -> Option<(u32, T)> {
        self.try_recv_bytes(None, tag).map(|(s, d)| (s, from_bytes(d)))
    }

    /// Exchange with a partner: send then receive (safe under the runtime's
    /// unbounded buffering; mirrors `MPI_Sendrecv`).
    pub fn sendrecv<T: Wire>(&mut self, dst: u32, src: u32, tag: u32, v: &T) -> T {
        self.send(dst, tag, v);
        self.recv(src, tag)
    }
}

#[inline]
fn is_internal_tag(tag: u32) -> bool {
    tag > MAX_USER_TAG
}

impl Drop for Comm {
    fn drop(&mut self) {
        // Teardown discipline, exercised by `hot-analyze schedules`:
        //
        // If this rank is dying of a panic, first drain its own mailbox —
        // in-flight envelopes addressed to a dead rank must be consumed, not
        // leak as "undrained" teardown noise — then wake every peer with a
        // poison message so a rank blocked in `recv` tears down instead of
        // deadlocking. The poison bypasses `yield_point`: a panicking rank
        // must never park itself waiting for a schedule grant.
        //
        // A crash-stop kill is different: the rank must vanish *silently* —
        // no poison, because a real dead node sends nothing. It still drains
        // its own mailbox (the simulator reclaiming the dead node's memory)
        // and still wakes peers, so blocked receivers re-run their check and
        // the failure detector gets scheduled; what they observe is only
        // the absence of progress.
        if self.killed {
            self.machine.mailboxes[self.rank as usize].drain_all();
            for dst in 0..self.machine.np {
                if dst != self.rank {
                    self.machine.sched.notify(dst);
                }
            }
        } else if std::thread::panicking() {
            self.machine.mailboxes[self.rank as usize].drain_all();
            for dst in 0..self.machine.np {
                if dst != self.rank {
                    self.machine.mailboxes[dst as usize].push(Envelope {
                        src: self.rank,
                        tag: POISON_TAG,
                        data: Bytes::new(),
                    });
                    self.machine.sched.notify(dst);
                }
            }
        }
        self.machine.sched.rank_finished(self.rank);
    }
}

/// A message still queued at a rank's mailbox after its SPMD body returned
/// — evidence of a communication-matching bug (or expected poison). On a
/// fault-plan run this also covers *silent loss*: frames a sender still
/// holds unacked because they were dropped on the wire and no receive ever
/// recovered them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Undrained {
    /// Rank whose mailbox held (or should have held) the message.
    pub at: u32,
    /// Sending rank.
    pub src: u32,
    /// Message tag.
    pub tag: u32,
    /// Human-readable class of `tag` — `"user"`, `"coll:barrier"`,
    /// `"abm"`, … — so fault-run failures are diagnosable without a tag
    /// table at hand.
    pub tag_name: &'static str,
    /// Transport flow sequence number; `None` on runs without a fault plan.
    pub seq: Option<u64>,
}

impl Undrained {
    /// Build a report entry, classifying the tag.
    #[must_use]
    pub fn new(at: u32, src: u32, tag: u32, seq: Option<u64>) -> Undrained {
        Undrained { at, src, tag, tag_name: tag_class_name(tag), seq }
    }
}

impl fmt::Display for Undrained {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {}: undrained {} message from rank {} (tag {:#x}",
            self.at, self.tag_name, self.src, self.tag
        )?;
        if let Some(seq) = self.seq {
            write!(f, ", flow seq {seq}")?;
        }
        write!(f, ")")
    }
}

/// Classify a tag for diagnostics: which subsystem's traffic was it?
#[must_use]
pub fn tag_class_name(tag: u32) -> &'static str {
    use crate::collectives::{
        TAG_ALLGATHER_BRUCK, TAG_ALLGATHER_RING, TAG_ALLTOALL, TAG_BARRIER, TAG_BCAST,
        TAG_GATHER, TAG_REDUCE,
    };
    match tag {
        POISON_TAG => "poison",
        FRAME_TAG => "frame",
        crate::abm::ABM_TAG => "abm",
        TAG_BARRIER => "coll:barrier",
        TAG_BCAST => "coll:bcast",
        TAG_REDUCE => "coll:reduce",
        TAG_GATHER => "coll:gather",
        TAG_ALLGATHER_RING => "coll:allgather",
        TAG_ALLGATHER_BRUCK => "coll:allgather",
        TAG_ALLTOALL => "coll:alltoall",
        t if t <= MAX_USER_TAG => "user",
        _ => "internal",
    }
}

/// Result of running an SPMD program on the simulated machine.
#[derive(Debug)]
pub struct RunOutput<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Per-rank communication counters, indexed by rank.
    pub stats: Vec<TrafficStats>,
    /// Wall-clock time for the whole run (spawn to last join).
    pub elapsed: Duration,
    /// Messages never received by the time their destination rank returned,
    /// poison excluded. Always worth asserting empty in tests: a non-empty
    /// list means a send had no matching recv. On fault-plan runs this is
    /// normalized per logical message (sorted, transport duplicates
    /// excluded, lost-but-unrecovered frames included), so it compares
    /// bitwise across schedules.
    pub undrained: Vec<Undrained>,
    /// Per-rank reliability counters, indexed by rank; all zero without a
    /// fault plan. Deliberately *not* part of the deterministic trace
    /// contract — recovery work depends on fault seed and schedule.
    pub reliability: Vec<ReliabilityStats>,
    /// Faults the plan actually injected over the run; all zero without a
    /// fault plan. Checkers assert this is non-zero to reject vacuous
    /// "survived faults" passes.
    pub injected: InjectedFaults,
}

impl<T> RunOutput<T> {
    /// Aggregate traffic over all ranks.
    #[must_use]
    pub fn total_traffic(&self) -> TrafficStats {
        let mut t = TrafficStats::default();
        for s in &self.stats {
            t.merge(s);
        }
        t
    }
}

/// Which execution substrate carries the simulated ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Runtime {
    /// One OS thread per rank (16 MiB stacks). Free OS concurrency, but
    /// caps practical machine sizes near np ≈ 100.
    #[default]
    Threads,
    /// Cooperative fibers multiplexed on a small worker pool (see
    /// [`crate::events`]): the substrate that runs the paper's actual
    /// 1024–6800 processor configurations for real.
    Events,
}

/// Per-run machine configuration: size, runtime, scheduling policy, fault
/// injection, and collective shapes. Build one with [`RunConfig::builder`]:
///
/// ```
/// use hot_comm::RunConfig;
/// let out = RunConfig::builder()
///     .np(4)
///     .run(|c| c.allreduce_sum_u64(u64::from(c.rank())));
/// assert!(out.results.iter().all(|&t| t == 6));
/// ```
pub struct RunConfig {
    np: u32,
    scheduler: Option<Arc<dyn Scheduler>>,
    faults: Option<FaultPlan>,
    runtime: Runtime,
    workers: Option<usize>,
    stack_size: Option<usize>,
    event_seed: Option<u64>,
    collectives: CollectiveShape,
}

impl RunConfig {
    /// Start building a run configuration. `np` defaults to 1, the runtime
    /// to [`Runtime::Threads`], collectives to [`CollectiveShape::Auto`].
    #[must_use]
    pub fn builder() -> RunConfigBuilder {
        RunConfigBuilder {
            cfg: RunConfig {
                np: 1,
                scheduler: None,
                faults: None,
                runtime: Runtime::default(),
                workers: None,
                stack_size: None,
                event_seed: None,
                collectives: CollectiveShape::default(),
            },
        }
    }

    /// Execute the SPMD closure `f` on this configuration's machine and
    /// gather results. A panic on any rank poisons the others and
    /// propagates out (lowest-rank panic wins when several fire).
    pub fn run<T, F>(self, f: F) -> RunOutput<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        let np = self.np;
        assert!(np >= 1, "need at least one rank");
        let kill_armed = self.faults.as_ref().is_some_and(FaultPlan::kill_armed);
        match self.runtime {
            Runtime::Threads => {
                assert!(
                    self.event_seed.is_none(),
                    "event_seed requires Runtime::Events (the builder sets it)"
                );
                let sched = self.scheduler.unwrap_or_else(|| {
                    if kill_armed {
                        // A dead rank never notifies: blocked receivers must
                        // wake on a timer to run failure-detection rounds.
                        // The period is the model-level detection tick —
                        // wall time only wakes the thread; every detection
                        // decision reads model clocks.
                        Arc::new(RealScheduler::timed(
                            np,
                            Duration::from_micros(DETECT_TICK_MICROS),
                        )) as Arc<dyn Scheduler>
                    } else {
                        Arc::new(RealScheduler::new(np)) as Arc<dyn Scheduler>
                    }
                });
                let machine = Machine::build(np, sched, self.faults, self.collectives);
                let stack = self.stack_size.unwrap_or(16 << 20);
                run_threads(np, &machine, stack, &f)
            }
            Runtime::Events => {
                assert!(
                    self.scheduler.is_none(),
                    "the Events runtime provides its own scheduler; use \
                     event_seed(..) for seeded serialized exploration"
                );
                let sched = Arc::new(match self.event_seed {
                    Some(seed) => EventSched::seeded(np, seed),
                    None if kill_armed => EventSched::timed(
                        np,
                        Duration::from_micros(DETECT_TICK_MICROS),
                    ),
                    None => EventSched::new(np),
                });
                let machine = Machine::build(
                    np,
                    sched.clone() as Arc<dyn Scheduler>,
                    self.faults,
                    self.collectives,
                );
                let workers = if sched.is_seeded() {
                    1
                } else {
                    self.workers.unwrap_or_else(|| {
                        std::thread::available_parallelism()
                            .map(std::num::NonZeroUsize::get)
                            .unwrap_or(1)
                            .min(8)
                    })
                };
                let stack = self.stack_size.unwrap_or(4 << 20);
                run_events(np, &machine, &sched, workers, stack, &f)
            }
        }
    }
}

/// Builder for [`RunConfig`] — the single entry point onto the simulated
/// machine (collapsing the former `World::run` / `run_with_scheduler` /
/// `run_config` trio).
pub struct RunConfigBuilder {
    cfg: RunConfig,
}

impl RunConfigBuilder {
    /// Number of ranks in the machine.
    #[must_use]
    pub fn np(mut self, np: u32) -> Self {
        self.cfg.np = np;
        self
    }

    /// Explicit scheduling policy (e.g. a seeded
    /// [`crate::sched::FuzzScheduler`]) for the Threads runtime. The
    /// Events runtime schedules itself; see [`Self::event_seed`].
    #[must_use]
    pub fn scheduler(mut self, sched: Arc<dyn Scheduler>) -> Self {
        self.cfg.scheduler = Some(sched);
        self
    }

    /// Optional form of [`Self::scheduler`], for sweep drivers that decide
    /// per iteration whether to override the policy.
    #[must_use]
    pub fn scheduler_opt(mut self, sched: Option<Arc<dyn Scheduler>>) -> Self {
        self.cfg.scheduler = sched;
        self
    }

    /// Install a fault plan: every non-poison message travels CRC-framed
    /// through the plan's seeded adversary and the reliable transport
    /// ([`crate::reliable`]) recovers drops, duplicates, reordering,
    /// delays, and bit-flips transparently.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = Some(plan);
        self
    }

    /// Optional form of [`Self::faults`].
    #[must_use]
    pub fn faults_opt(mut self, plan: Option<FaultPlan>) -> Self {
        self.cfg.faults = plan;
        self
    }

    /// Select the execution substrate (threads vs event-driven fibers).
    #[must_use]
    pub fn runtime(mut self, rt: Runtime) -> Self {
        self.cfg.runtime = rt;
        self
    }

    /// Worker-thread count for the Events runtime (default: available
    /// parallelism, capped at 8). Ignored by the Threads runtime.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = Some(n.max(1));
        self
    }

    /// Per-rank stack size in bytes (default 16 MiB on Threads, 4 MiB on
    /// Events, where pages are lazily mapped so untouched stack is free).
    #[must_use]
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.cfg.stack_size = Some(bytes);
        self
    }

    /// Seeded serialized schedule exploration on the Events runtime (the
    /// fiber analogue of a [`crate::sched::FuzzScheduler`]); implies
    /// [`Runtime::Events`] and a single worker.
    #[must_use]
    pub fn event_seed(mut self, seed: u64) -> Self {
        self.cfg.event_seed = Some(seed);
        self.cfg.runtime = Runtime::Events;
        self
    }

    /// Force a collective algorithm family instead of the size-based
    /// [`CollectiveShape::Auto`] default.
    #[must_use]
    pub fn collectives(mut self, shape: CollectiveShape) -> Self {
        self.cfg.collectives = shape;
        self
    }

    /// Finish building.
    #[must_use]
    pub fn build(self) -> RunConfig {
        self.cfg
    }

    /// Build and run in one step — the common call shape:
    /// `RunConfig::builder().np(4).run(|c| ...)`.
    pub fn run<T, F>(self, f: F) -> RunOutput<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        self.cfg.run(f)
    }
}

impl Machine {
    fn build(
        np: u32,
        sched: Arc<dyn Scheduler>,
        faults: Option<FaultPlan>,
        shape: CollectiveShape,
    ) -> Arc<Machine> {
        Arc::new(Machine {
            np,
            mailboxes: (0..np).map(|_| Mailbox::default()).collect(),
            sched,
            transport: faults.map(|plan| Transport::new(np, plan)),
            shape,
        })
    }
}

/// How one rank's body ended.
enum RankExit<T> {
    /// Returned normally.
    Done(T, TrafficStats),
    /// Crash-stop kill fired: the rank vanished silently (no result).
    Killed,
    /// Any other panic; re-raised by [`finish`] after all ranks settle.
    Panicked(Box<dyn std::any::Any + Send>),
}

/// The body every rank executes, identical across runtimes: run `f`,
/// classify the exit, and guarantee the teardown discipline (`Comm::drop`
/// runs under `panicking()` for real panics, under `killed` for
/// crash-stops) regardless of how the rank ends.
fn rank_main<T, F>(rank: u32, machine: &Arc<Machine>, f: &F) -> RankExit<T>
where
    F: Fn(&mut Comm) -> T + Sync,
{
    machine.sched.rank_started(rank);
    let mut comm = Comm {
        rank,
        machine: machine.clone(),
        stats: TrafficStats::default(),
        ops: 0,
        killed: false,
    };
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut comm)));
    match out {
        Ok(v) => {
            let stats = comm.stats();
            drop(comm);
            RankExit::Done(v, stats)
        }
        Err(p) if p.downcast_ref::<RankKilled>().is_some() => {
            // Crash-stop: silent teardown (Drop sees `killed`), no result,
            // no propagation — detection is the survivors' job.
            drop(comm);
            RankExit::Killed
        }
        Err(p) => {
            // Re-raise *while `comm` is still in scope* so the poison-
            // teardown Drop observes `thread::panicking()`, then catch the
            // unwind again at this frame: on the Events runtime it must
            // not cross the fiber boundary, and on Threads deferring the
            // propagation to `finish` keeps "lowest panicking rank wins"
            // deterministic.
            let p2 = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                let _comm = comm;
                std::panic::resume_unwind(p)
            }))
            .expect_err("resume_unwind cannot return");
            RankExit::Panicked(p2)
        }
    }
}

/// Threads runtime: one scoped OS thread per rank.
fn run_threads<T, F>(
    np: u32,
    machine: &Arc<Machine>,
    stack_size: usize,
    f: &F,
) -> RunOutput<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    let exits: Vec<Mutex<Option<RankExit<T>>>> = (0..np).map(|_| Mutex::new(None)).collect();
    // Host-side elapsed time for Gflop/s reporting; simulation logic
    // never reads it. hot-lint: allow(wall-clock)
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for rank in 0..np {
            let machine = machine.clone();
            let slot = &exits[rank as usize];
            std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(stack_size)
                .spawn_scoped(scope, move || {
                    let exit = rank_main(rank, &machine, f);
                    *slot.lock().expect("exit slot") = Some(exit);
                })
                .expect("spawn rank thread");
        }
    });
    finish(np, machine, exits, t0.elapsed())
}

/// Events runtime: every rank is a fiber; `workers` OS threads drive them
/// through the [`EventSched`] executor.
fn run_events<T, F>(
    np: u32,
    machine: &Arc<Machine>,
    sched: &Arc<EventSched>,
    workers: usize,
    stack_size: usize,
    f: &F,
) -> RunOutput<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    let exits: Vec<Mutex<Option<RankExit<T>>>> = (0..np).map(|_| Mutex::new(None)).collect();
    // hot-lint: allow(wall-clock) — host-side elapsed only.
    let t0 = Instant::now();
    let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..np)
        .map(|rank| {
            let machine = machine.clone();
            let slot = &exits[rank as usize];
            Box::new(move || {
                let exit = rank_main(rank, &machine, f);
                *slot.lock().expect("exit slot") = Some(exit);
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    sched.execute_scoped(bodies, workers, stack_size);
    finish(np, machine, exits, t0.elapsed())
}

/// Shared epilogue: propagate panics (lowest rank first), audit undetected
/// kills, sweep mailboxes for undrained traffic, and collect results.
fn finish<T>(
    np: u32,
    machine: &Arc<Machine>,
    exits: Vec<Mutex<Option<RankExit<T>>>>,
    elapsed: Duration,
) -> RunOutput<T> {
    let mut collected = Vec::with_capacity(np as usize);
    for (rank, slot) in exits.into_iter().enumerate() {
        let exit = slot
            .into_inner()
            .expect("exit slot")
            .unwrap_or_else(|| panic!("rank {rank} never ran to an exit"));
        if let RankExit::Panicked(p) = exit {
            std::panic::resume_unwind(p);
        }
        collected.push(exit);
    }

    // Undetected-kill invariant: if a crash-stop kill fired, some
    // surviving rank must have aborted the step (its crash-stop panic
    // propagated above and we never reach this line). Reaching here with
    // dead ranks means every survivor ran to completion oblivious — a
    // broken failure detector. The `hot-analyze kills` planted fixture
    // relies on this firing.
    if let Some(t) = &machine.transport {
        let dead = t.dead_ranks();
        if !dead.is_empty() {
            panic!(
                "crash-stop: rank(s) {dead:?} were killed mid-run but every \
                 surviving rank completed without detecting the death — \
                 undetected kill"
            );
        }
    }

    // Teardown audit. Without a transport this is a straight mailbox
    // sweep; with one, leftover raw frames are unframed and cross-
    // checked against the flow tables so lost-on-the-wire messages are
    // reported too instead of vanishing silently.
    let mut leftover = Vec::new();
    for (at, mbox) in machine.mailboxes.iter().enumerate() {
        for env in mbox.drain_all() {
            leftover.push((at as u32, env));
        }
    }
    let undrained = match &machine.transport {
        Some(t) => t.teardown_undrained(&leftover),
        None => leftover
            .iter()
            .filter(|(_, env)| env.tag != POISON_TAG)
            .map(|(at, env)| Undrained::new(*at, env.src, env.tag, None))
            .collect(),
    };
    let reliability = match &machine.transport {
        Some(t) => (0..np).map(|r| t.stats(r)).collect(),
        None => vec![ReliabilityStats::default(); np as usize],
    };
    let injected = machine.transport.as_ref().map(|t| t.plan.injected()).unwrap_or_default();

    let mut out_results = Vec::with_capacity(np as usize);
    let mut out_stats = Vec::with_capacity(np as usize);
    for exit in collected {
        match exit {
            RankExit::Done(r, s) => {
                out_results.push(r);
                out_stats.push(s);
            }
            RankExit::Killed => unreachable!(
                "a killed rank implies a crash-stop abort or the undetected-\
                 kill audit; neither returns"
            ),
            RankExit::Panicked(_) => unreachable!("panics propagated above"),
        }
    }
    RunOutput {
        results: out_results,
        stats: out_stats,
        elapsed,
        undrained,
        reliability,
        injected,
    }
}

// The pre-event-runtime `World::run*` trio lived here as deprecated shims
// for one release after the `RunConfig::builder` redesign; the grace
// period is over and they are gone. The `hot-analyze lint` runtime-API
// rule still flags any attempt to reintroduce callers.

#[cfg(test)]
mod tests {
    use crate::runtime::RunConfig;
    use super::*;
    use crate::fault::{DetectionPath, FaultConfig, FaultPlan};
    use crate::sched::FuzzScheduler;

    /// Ring workload with enough rounds of traffic that a mid-run kill
    /// leaves plenty of surviving communication to detect it through.
    fn chatty_ring(c: &mut Comm) -> u64 {
        let right = (c.rank() + 1) % c.size();
        let left = (c.rank() + c.size() - 1) % c.size();
        let mut acc = 0u64;
        for i in 0..64u64 {
            acc = acc.wrapping_add(c.sendrecv::<u64>(right, left, 7, &i));
        }
        acc
    }

    fn panic_text(payload: &Box<dyn std::any::Any + Send>) -> String {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "non-string panic".into())
    }

    #[test]
    fn killed_rank_aborts_run_via_timeout_detection() {
        let plan = FaultPlan::new(FaultConfig::clean(3)).with_rank_kill_at_op(1, 40);
        let monitor = plan.monitor();
        let result = std::panic::catch_unwind(|| {
            RunConfig::builder().np(4).faults(plan).run(chatty_ring);
        });
        // The run must abort (crash-stop panic from a detecting survivor;
        // whichever join lands first may surface its poison instead).
        assert!(result.is_err(), "killed run completed");
        let kills = monitor.kills();
        assert_eq!(kills.len(), 1);
        assert_eq!(kills[0].rank, 1);
        assert_eq!(kills[0].site, KillSite::Op(40));
        let detections = monitor.detections();
        assert!(
            detections.iter().any(|d| d.dead == 1 && d.via == DetectionPath::Timeout),
            "no survivor timeout-detected the dead rank: {detections:?}"
        );
    }

    #[test]
    fn killed_rank_under_fuzz_is_detected_at_quiescence() {
        let plan = FaultPlan::new(FaultConfig::clean(7)).with_rank_kill_at_op(2, 30);
        let monitor = plan.monitor();
        let sched = Arc::new(FuzzScheduler::new(4, 11));
        let result = std::panic::catch_unwind(|| {
            RunConfig::builder().np(4).scheduler(sched).faults(plan).run(chatty_ring);
        });
        let payload = result.expect_err("killed fuzz run completed");
        let msg = panic_text(&payload);
        assert!(
            msg.contains("crash-stop") || msg.contains("poison"),
            "unexpected abort message: {msg}"
        );
        assert_eq!(monitor.kills_fired(), 1);
        assert!(
            !monitor.detections().is_empty(),
            "quiescence intercept recorded no detection"
        );
    }

    #[test]
    fn undetected_kill_panics_at_teardown() {
        // Epoch kill in a workload with no post-kill communication: nobody
        // can notice the death, so the World itself must flag it.
        let plan = FaultPlan::new(FaultConfig::clean(1)).with_rank_kill_at_epoch(1, 0);
        let monitor = plan.monitor();
        let result = std::panic::catch_unwind(|| {
            RunConfig::builder().np(2).faults(plan).run(|c| {
                c.kill_point(0);
                u64::from(c.rank()) * 3
            });
        });
        let payload = result.expect_err("undetected kill must abort teardown");
        let msg = panic_text(&payload);
        assert!(msg.contains("undetected kill"), "{msg}");
        assert_eq!(monitor.kills_fired(), 1);
        assert!(monitor.detections().is_empty());
    }

    #[test]
    fn kill_free_armed_run_matches_unarmed_golden() {
        // Arming the detector (heartbeats, timed scheduler, detection
        // rounds) must not perturb logical results or traffic when no kill
        // actually fires: the recovery machinery is observable only through
        // ReliabilityStats.
        let golden = RunConfig::builder().np(4).run(chatty_ring);
        let plan = FaultPlan::new(FaultConfig::clean(5)).with_rank_kill_at_epoch(3, u64::MAX);
        assert!(plan.kill_armed());
        let out = RunConfig::builder().np(4).faults(plan).run(chatty_ring);
        assert_eq!(out.results, golden.results);
        assert_eq!(out.stats, golden.stats);
        assert!(out.undrained.is_empty());
    }

    #[test]
    fn single_rank() {
        let out = RunConfig::builder().np(1).run(|c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.size(), 1);
            7u64
        });
        assert_eq!(out.results, vec![7]);
        assert_eq!(out.stats[0], TrafficStats::default());
        assert!(out.undrained.is_empty());
    }

    #[test]
    fn ping_pong() {
        let out = RunConfig::builder().np(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 5, &123u64);
                c.recv::<u64>(1, 6)
            } else {
                let v: u64 = c.recv(0, 5);
                c.send(0, 6, &(v * 2));
                v
            }
        });
        assert_eq!(out.results, vec![246, 123]);
        assert_eq!(out.stats[0].sends, 1);
        assert_eq!(out.stats[0].bytes_sent, 8);
        assert_eq!(out.stats[1].recvs, 1);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = RunConfig::builder().np(2).run(|c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                c.send(1, 2, &20u32);
                c.send(1, 1, &10u32);
                0
            } else {
                let a: u32 = c.recv(0, 1);
                let b: u32 = c.recv(0, 2);
                assert_eq!((a, b), (10, 20));
                1
            }
        });
        assert_eq!(out.results.len(), 2);
    }

    #[test]
    fn recv_any_source() {
        let out = RunConfig::builder().np(4).run(|c| {
            if c.rank() == 0 {
                let mut sum = 0u64;
                for _ in 0..3 {
                    let (_, v) = c.recv_any::<u64>(9);
                    sum += v;
                }
                sum
            } else {
                c.send(0, 9, &(c.rank() as u64));
                0
            }
        });
        assert_eq!(out.results[0], 1 + 2 + 3);
    }

    #[test]
    fn try_recv_polls() {
        let out = RunConfig::builder().np(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 3, &55u8);
                0u8
            } else {
                loop {
                    if let Some((src, v)) = c.try_recv_any::<u8>(3) {
                        assert_eq!(src, 0);
                        return v;
                    }
                    std::hint::spin_loop();
                }
            }
        });
        assert_eq!(out.results[1], 55);
    }

    #[test]
    fn sendrecv_ring() {
        let np = 5;
        let out = RunConfig::builder().np(np).run(|c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.sendrecv::<u32>(right, left, 7, &c.rank())
        });
        for r in 0..np {
            assert_eq!(out.results[r as usize], (r + np - 1) % np);
        }
    }

    #[test]
    fn traffic_stats_track_bytes() {
        let out = RunConfig::builder().np(2).run(|c| {
            if c.rank() == 0 {
                let payload = vec![0u64; 100];
                c.send(1, 1, &payload);
            } else {
                let _: Vec<u64> = c.recv(0, 1);
            }
        });
        assert_eq!(out.stats[0].bytes_sent, 808);
        assert_eq!(out.stats[0].max_message, 808);
        assert_eq!(out.stats[1].bytes_recvd, 808);
        assert_eq!(out.total_traffic().sends, 1);
    }

    #[test]
    fn panicking_rank_tears_down_machine() {
        let result = std::panic::catch_unwind(|| {
            RunConfig::builder().np(2).run(|c| {
                if c.rank() == 0 {
                    // Would block forever without poison teardown.
                    let _: u64 = c.recv(1, 1);
                } else {
                    panic!("rank 1 exploded");
                }
            });
        });
        assert!(result.is_err());
    }

    /// Regression test for the teardown-drain fix: the panicking rank sends
    /// unrelated traffic first, so the peer's mailbox holds a non-matching
    /// envelope when the poison arrives. The blocked peer must still wake
    /// (poison is found by scan, not FIFO order) and the dead rank's own
    /// queued messages must not wedge anything.
    #[test]
    fn poison_wakes_peer_blocked_behind_unmatched_traffic() {
        let result = std::panic::catch_unwind(|| {
            RunConfig::builder().np(2).run(|c| {
                if c.rank() == 0 {
                    // Never-received noise, then death. Rank 1 also sent us
                    // a message we never receive: drain-on-panic consumes it.
                    c.send(1, 77, &1u8);
                    panic!("rank 0 exploded");
                } else {
                    c.send(0, 88, &2u8);
                    // Blocks on a tag rank 0 never sends; only the poison
                    // scan can wake us.
                    let _: u8 = c.recv(0, 44);
                    0u8
                }
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn undrained_messages_reported_at_teardown() {
        let out = RunConfig::builder().np(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 9, &3u32); // never received
            }
        });
        assert_eq!(out.undrained, vec![Undrained::new(1, 0, 9, None)]);
        assert_eq!(out.undrained[0].tag_name, "user");
        let shown = out.undrained[0].to_string();
        assert!(shown.contains("user"), "{shown}");
        assert!(shown.contains("0x9"), "{shown}");
    }

    #[test]
    fn stats_since_snapshot() {
        let out = RunConfig::builder().np(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, &1u8);
                let snap = c.stats();
                c.send(1, 1, &2u8);
                c.send(1, 1, &3u8);
                c.stats().since(&snap).sends
            } else {
                for _ in 0..3 {
                    let _: u8 = c.recv(0, 1);
                }
                0
            }
        });
        assert_eq!(out.results[0], 2);
    }

    #[test]
    fn fuzzed_schedules_reproduce_and_agree() {
        let body = |c: &mut Comm| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.send(right, 1, &(c.rank() as u64));
            let v: u64 = c.recv(left, 1);
            v * 10 + c.rank() as u64
        };
        let reference = RunConfig::builder().np(4).run(body);
        for seed in 0..8 {
            let sched = Arc::new(FuzzScheduler::new(4, seed));
            let out = RunConfig::builder().np(4).scheduler(sched.clone()).run(body);
            assert_eq!(out.results, reference.results, "seed {seed}");
            assert_eq!(out.stats, reference.stats, "seed {seed}");
            assert!(out.undrained.is_empty(), "seed {seed}");
            // Replay: the same seed yields the same schedule trace.
            let sched2 = Arc::new(FuzzScheduler::new(4, seed));
            let _ = RunConfig::builder().np(4).scheduler(sched2.clone()).run(body);
            assert_eq!(sched.trace(), sched2.trace(), "seed {seed} replay");
        }
    }

    #[test]
    fn fuzz_scheduler_proves_deadlock_with_tag_state() {
        // Both ranks receive first: a textbook head-to-head deadlock. The
        // production scheduler would hang; the fuzz scheduler must prove it
        // and name both ranks' waits.
        let result = std::panic::catch_unwind(|| {
            let sched = Arc::new(FuzzScheduler::new(2, 1));
            RunConfig::builder().np(2).scheduler(sched).run(|c| {
                let other = 1 - c.rank();
                let v: u64 = c.recv(other, 5); // deadlock: nobody sends first
                c.send(other, 5, &v);
            });
        });
        let payload = result.expect_err("deadlock must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(msg.contains("tag=0x5"), "{msg}");
    }

    // ---- event runtime (fibers on a worker pool) ----

    #[test]
    fn event_runtime_matches_threads_bitwise() {
        // The thread→fiber swap is below the Comm API: identical results,
        // identical logical traffic, nothing left in any mailbox.
        let golden = RunConfig::builder().np(8).run(chatty_ring);
        let out = RunConfig::builder()
            .np(8)
            .runtime(Runtime::Events)
            .run(chatty_ring);
        assert_eq!(out.results, golden.results);
        assert_eq!(out.stats, golden.stats);
        assert!(out.undrained.is_empty());
    }

    #[test]
    fn event_runtime_np_1024_smoke() {
        // A thousand ranks on a handful of workers: barrier + allreduce +
        // point-to-point ring, small stacks. This machine size is why the
        // event runtime exists; Threads would need ~16 GiB of stacks.
        let np = 1024u32;
        let out = RunConfig::builder()
            .np(np)
            .runtime(Runtime::Events)
            .stack_size(256 << 10)
            .run(|c| {
                c.barrier();
                let sum = c.allreduce_sum_u64(u64::from(c.rank()));
                let right = (c.rank() + 1) % c.size();
                let left = (c.rank() + c.size() - 1) % c.size();
                let from_left = c.sendrecv::<u64>(right, left, 3, &u64::from(c.rank()));
                sum + from_left
            });
        let expect_sum = u64::from(np) * u64::from(np - 1) / 2;
        for (r, &v) in out.results.iter().enumerate() {
            let left = (r as u32 + np - 1) % np;
            assert_eq!(v, expect_sum + u64::from(left), "rank {r}");
        }
        assert!(out.undrained.is_empty());
    }

    #[test]
    fn event_seeded_trace_is_replayable() {
        // Seeded serialized mode is the fiber analogue of FuzzScheduler:
        // same seed → same grant trace and same output; different seeds
        // explore different schedules but agree on results.
        let body = |c: &mut Comm| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.send(right, 1, &u64::from(c.rank()));
            let v: u64 = c.recv(left, 1);
            v * 10 + u64::from(c.rank())
        };
        let run = |seed: u64| {
            let sched = Arc::new(EventSched::seeded(4, seed));
            let machine =
                Machine::build(4, sched.clone() as Arc<dyn Scheduler>, None, CollectiveShape::Auto);
            let out = run_events(4, &machine, &sched, 1, 256 << 10, &body);
            (out.results, out.stats, sched.trace())
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a, b, "same seed must replay bit-for-bit");
        let c = run(10);
        assert_eq!(a.0, c.0, "results are schedule-independent");
        assert_ne!(a.2, c.2, "seeds 9 and 10 should explore different schedules");
    }

    #[test]
    fn event_runtime_proves_deadlock_at_quiescence() {
        // Head-to-head recv: the production Fifo event pool must prove the
        // deadlock once quiescent (no tick installed) instead of hanging —
        // stronger than the thread runtime, which can only hang here.
        for seeded in [false, true] {
            let result = std::panic::catch_unwind(|| {
                let b = RunConfig::builder().np(2).runtime(Runtime::Events);
                let b = if seeded { b.event_seed(3) } else { b };
                b.run(|c| {
                    let other = 1 - c.rank();
                    let v: u64 = c.recv(other, 5); // nobody sends first
                    c.send(other, 5, &v);
                });
            });
            let payload = result.expect_err("deadlock must panic");
            let msg = panic_text(&payload);
            assert!(msg.contains("deadlock"), "seeded={seeded}: {msg}");
            assert!(msg.contains("tag=0x5"), "seeded={seeded}: {msg}");
        }
    }

    #[test]
    fn event_runtime_detects_kill_via_tick_rounds() {
        // Kill-armed fault run on fibers: the quiescent pool's detection
        // tick requeues blocked ranks so their failure-detection rounds
        // run — the fiber analogue of RealScheduler::timed.
        let plan = FaultPlan::new(FaultConfig::clean(3)).with_rank_kill_at_op(1, 40);
        let monitor = plan.monitor();
        let result = std::panic::catch_unwind(|| {
            RunConfig::builder()
                .np(4)
                .runtime(Runtime::Events)
                .faults(plan)
                .run(chatty_ring);
        });
        assert!(result.is_err(), "killed event run completed");
        let kills = monitor.kills();
        assert_eq!(kills.len(), 1);
        assert_eq!(kills[0].rank, 1);
        let detections = monitor.detections();
        assert!(
            detections.iter().any(|d| d.dead == 1 && d.via == DetectionPath::Timeout),
            "no survivor timeout-detected the dead rank on fibers: {detections:?}"
        );
    }

    #[test]
    fn event_armed_run_matches_unarmed_golden() {
        // Arming the detector on the event runtime (tick-mode pool) must
        // not perturb logical results or traffic when no kill fires.
        let golden = RunConfig::builder().np(4).runtime(Runtime::Events).run(chatty_ring);
        let plan = FaultPlan::new(FaultConfig::clean(5)).with_rank_kill_at_epoch(3, u64::MAX);
        assert!(plan.kill_armed());
        let out = RunConfig::builder()
            .np(4)
            .runtime(Runtime::Events)
            .faults(plan)
            .run(chatty_ring);
        assert_eq!(out.results, golden.results);
        assert_eq!(out.stats, golden.stats);
        assert!(out.undrained.is_empty());
    }

    #[test]
    fn event_runtime_panicking_rank_tears_down_machine() {
        // A real (non-kill) panic on one fiber must poison the machine,
        // wake every blocked peer, and re-raise out of run() — identical
        // teardown discipline to the thread runtime.
        let result = std::panic::catch_unwind(|| {
            RunConfig::builder().np(4).runtime(Runtime::Events).run(|c| {
                if c.rank() == 2 {
                    panic!("rank 2 exploded");
                }
                // Everyone else blocks on a message only rank 2 would send.
                c.recv::<u64>(2, 9)
            });
        });
        let payload = result.expect_err("panic must propagate");
        // Lowest-rank panic wins: rank 0 died of rank 2's poison, so either
        // the original panic or a poison-death naming rank 2 may surface.
        let msg = panic_text(&payload);
        assert!(
            msg.contains("rank 2 exploded") || msg.contains("rank 2 died"),
            "{msg}"
        );
    }
}
