//! # hot-comm
//!
//! A simulated distributed-memory message-passing machine, standing in for
//! the paper's hardware substrates (ASCI Red's NX/MPI mesh, Loki/Hyglac's
//! MPI-over-fast-ethernet).
//!
//! * [`runtime`] — ranks as OS threads, `(source, tag)`-matched send/recv,
//!   per-rank traffic counters, panic-safe teardown.
//! * [`collectives`] — barrier / bcast / reduce / allreduce / gather /
//!   allgather / alltoall / prefix sums, all built from point-to-point
//!   messages so the traffic counters reflect real wire activity.
//! * [`abm`] — the paper's "asynchronous batched messages" active-message
//!   layer with quiescence detection, used by the latency-hiding tree walk.
//! * [`wire`] — explicit little-endian message encoding.
//! * [`netmodel`] — latency/bandwidth cost model turning traffic counts
//!   into predicted 1997 wall-clock.
//!
//! The SPMD entry point is [`World::run`]:
//!
//! ```
//! use hot_comm::World;
//! let out = World::run(4, |comm| {
//!     let total = comm.allreduce_sum_u64(comm.rank() as u64);
//!     total
//! });
//! assert!(out.results.iter().all(|&t| t == 6));
//! ```

#![warn(missing_docs)]

pub mod abm;
mod chan;
pub mod collectives;
pub mod fault;
pub mod netmodel;
#[cfg(test)]
mod proptests;
pub mod reliable;
pub mod runtime;
pub mod sched;
pub mod wire;

pub use abm::{Abm, AbmStats};
pub use fault::{
    DetectionPath, DetectionRecord, FaultConfig, FaultDecision, FaultMonitor, FaultPlan,
    InjectedFaults, KillRecord, KillSite,
};
pub use netmodel::NetworkModel;
pub use reliable::{
    ReliabilityStats, ReliableComm, BACKOFF_CAP, CONFIRM_DEAD_AFTER_TICKS, DETECT_TICK_MICROS,
    SUSPECT_AFTER_TICKS,
};
pub use runtime::{
    Comm, Envelope, RankKilled, RunConfig, RunOutput, TrafficStats, Undrained, World, MAX_USER_TAG,
    POISON_TAG,
};
pub use sched::{Deadlock, FuzzScheduler, RealScheduler, SchedOp, Scheduler, Want};
pub use wire::{
    crc32, frame_message, from_bytes, to_bytes, unframe_message, Frame, FrameError,
    KeyBatchRequest, Wire,
};
