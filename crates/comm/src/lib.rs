//! # hot-comm
//!
//! A simulated distributed-memory message-passing machine, standing in for
//! the paper's hardware substrates (ASCI Red's NX/MPI mesh, Loki/Hyglac's
//! MPI-over-fast-ethernet).
//!
//! * [`runtime`] — the `(source, tag)`-matched send/recv machine, per-rank
//!   traffic counters, panic-safe teardown, and the [`RunConfig`] builder
//!   that selects the execution substrate: one OS thread per rank
//!   ([`Runtime::Threads`]) or thousands of cooperative fibers on a worker
//!   pool ([`Runtime::Events`] — the paper's 1024–6800 rank machines, run
//!   for real).
//! * [`events`] / fibers — the event-driven rank substrate.
//! * [`collectives`] — barrier / bcast / reduce / allreduce / gather /
//!   allgather / alltoall / prefix sums, all built from point-to-point
//!   messages so the traffic counters reflect real wire activity;
//!   [`CollectiveShape`] picks ring vs log-round allgather.
//! * [`abm`] — the paper's "asynchronous batched messages" active-message
//!   layer with quiescence detection, used by the latency-hiding tree walk.
//! * [`wire`] — explicit little-endian message encoding.
//! * [`netmodel`] — latency/bandwidth cost model turning traffic counts
//!   into predicted 1997 wall-clock.
//!
//! The SPMD entry point is [`RunConfig::builder`]:
//!
//! ```
//! use hot_comm::prelude::*;
//! let out = RunConfig::builder()
//!     .np(4)
//!     .runtime(Runtime::Events)
//!     .run(|comm| comm.allreduce_sum_u64(u64::from(comm.rank())));
//! assert!(out.results.iter().all(|&t| t == 6));
//! ```

#![warn(missing_docs)]

pub mod abm;
mod chan;
pub mod collectives;
pub mod events;
pub mod fault;
mod fiber;
pub mod netmodel;
#[cfg(test)]
mod proptests;
pub mod reliable;
pub mod runtime;
pub mod sched;
pub mod wire;

pub use abm::{Abm, AbmStats};
pub use collectives::{CollectiveShape, AUTO_TREE_MIN_NP};
pub use events::EventSched;
pub use fault::{
    DetectionPath, DetectionRecord, FaultConfig, FaultDecision, FaultMonitor, FaultPlan,
    InjectedFaults, KillRecord, KillSite,
};
pub use netmodel::NetworkModel;
pub use reliable::{
    ReliabilityStats, ReliableComm, BACKOFF_CAP, CONFIRM_DEAD_AFTER_TICKS, DETECT_TICK_MICROS,
    SUSPECT_AFTER_TICKS,
};
pub use runtime::{
    Comm, Envelope, RankKilled, RunConfig, RunConfigBuilder, RunOutput, Runtime, TrafficStats,
    Undrained, MAX_USER_TAG, POISON_TAG,
};
pub use sched::{Deadlock, FuzzScheduler, RealScheduler, SchedOp, Scheduler, Want};
pub use wire::{
    crc32, frame_message, from_bytes, to_bytes, unframe_message, Frame, FrameError,
    KeyBatchRequest, Wire,
};

/// One-stop imports for SPMD programs on the simulated machine.
///
/// The nesting story, in one place: a run is configured by
/// [`RunConfig::builder`] (machine size, runtime, scheduler, faults,
/// collective shapes — everything about *how* the machine executes).
/// Everything about *what* the program computes lives in the options
/// struct of the subsystem you call (`hot_gravity::DistOptions`, which
/// nests `hot_core::WalkConfig`; `hot_gravity::TreecodeOptions`;
/// [`FaultConfig`] inside a [`FaultPlan`]). All of those are plain data
/// with `Default` + `with_*` builder methods; none of them nests a
/// `RunConfig`.
pub mod prelude {
    pub use crate::collectives::CollectiveShape;
    pub use crate::fault::{FaultConfig, FaultPlan};
    pub use crate::runtime::{Comm, RunConfig, RunOutput, Runtime, TrafficStats};
    pub use crate::sched::{FuzzScheduler, Scheduler};
    pub use crate::wire::Wire;
}
