//! Property tests of the ledger algebra (proptest shim).
//!
//! Three laws, straight from ISSUE requirements:
//! 1. counter merge is associative and commutative,
//! 2. span nesting never produces negative self-time (exclusive counters
//!    and model seconds are non-negative, and children partition their
//!    parent's inclusive counts),
//! 3. the per-rank reduce is independent of record arrival order.

#![cfg(test)]

use crate::report::RunReport;
use crate::{Counter, CounterSet, Ledger, ModelClock, Phase, COUNTERS, COUNTER_COUNT, PHASES};
use proptest::prelude::*;

fn set_from(vals: &[u64]) -> CounterSet {
    let mut c = CounterSet::new();
    for (i, &v) in vals.iter().enumerate() {
        c.add(COUNTERS[i % COUNTER_COUNT], v);
    }
    c
}

/// A tiny op language driving a `Ledger`: interpreted leniently so every
/// generated program is valid (ends are ignored when nothing is open and
/// all spans are closed at the end).
#[derive(Clone, Debug)]
enum Op {
    Begin(usize),
    End,
    Add(usize, u64),
}

fn run_program(ops: &[Op]) -> Ledger {
    let mut l = Ledger::new(ModelClock::paper_loki());
    let mut depth = 0usize;
    for op in ops {
        match *op {
            Op::Begin(p) => {
                l.begin(PHASES[p % PHASES.len()]);
                depth += 1;
            }
            Op::End => {
                if depth > 0 {
                    l.end();
                    depth -= 1;
                }
            }
            Op::Add(c, n) => l.add(COUNTERS[c % COUNTER_COUNT], n % 1_000_000),
        }
    }
    for _ in 0..depth {
        l.end();
    }
    l
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..16, 0u64..1_000_000, 0u8..3).prop_map(|(a, n, kind)| match kind {
        0 => Op::Begin(a),
        1 => Op::End,
        _ => Op::Add(a, n),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Law 1a: merge is commutative.
    #[test]
    fn merge_commutes(a in proptest::collection::vec(0u64..1u64 << 40, COUNTER_COUNT..COUNTER_COUNT + 1),
                      b in proptest::collection::vec(0u64..1u64 << 40, COUNTER_COUNT..COUNTER_COUNT + 1)) {
        let (sa, sb) = (set_from(&a), set_from(&b));
        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// Law 1b: merge is associative.
    #[test]
    fn merge_associates(a in proptest::collection::vec(0u64..1u64 << 40, COUNTER_COUNT..COUNTER_COUNT + 1),
                        b in proptest::collection::vec(0u64..1u64 << 40, COUNTER_COUNT..COUNTER_COUNT + 1),
                        c in proptest::collection::vec(0u64..1u64 << 40, COUNTER_COUNT..COUNTER_COUNT + 1)) {
        let (sa, sb, sc) = (set_from(&a), set_from(&b), set_from(&c));
        let mut left = sa;
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Law 2: for any program of nested spans and counter bumps, every
    /// span's exclusive counters fit inside its inclusive counters, model
    /// self-time is non-negative, and top-level inclusive counts never
    /// exceed the ledger totals.
    #[test]
    fn nesting_never_goes_negative(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let l = run_program(&ops);
        let mut top_level = CounterSet::new();
        for s in l.spans() {
            prop_assert!(s.exclusive.le(&s.inclusive), "exclusive > inclusive in {s:?}");
            prop_assert!(s.self_seconds >= 0.0, "negative self time in {s:?}");
            prop_assert!(
                l.clock().seconds(&s.exclusive) == s.self_seconds,
                "self time not a pure function of exclusive counters"
            );
            if s.depth == 0 {
                top_level.merge(&s.inclusive);
            }
        }
        prop_assert!(top_level.le(l.totals()), "spans attribute more than was recorded");
        // Exclusive counters across *all* spans partition the attributed
        // work: they sum to exactly the top-level inclusive counts.
        let mut excl_sum = CounterSet::new();
        for s in l.spans() {
            excl_sum.merge(&s.exclusive);
        }
        prop_assert_eq!(excl_sum, top_level);
    }

    /// Law 3: the reduce is a pure function of the record *set*; rotating
    /// or reversing arrival order changes nothing.
    #[test]
    fn reduce_ignores_arrival_order(
        seeds in proptest::collection::vec(proptest::collection::vec(0u64..1u64 << 30, 4..5), 1..7),
        rot in 0usize..7,
    ) {
        let records: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(rank, s)| {
                let mut l = Ledger::new(ModelClock::paper_loki());
                l.span(Phase::Walk, |l| l.add(Counter::CellsOpened, s[0]));
                l.span(Phase::Force, |l| {
                    l.add(Counter::PpInteractions, s[1]);
                    l.add(Counter::Flops, s[2].saturating_mul(38));
                    l.add(Counter::BytesSent, s[3]);
                });
                l.rank_record(rank as u32)
            })
            .collect();
        let reference = RunReport::from_records(&records);
        let mut rotated = records.clone();
        rotated.rotate_left(rot % records.len().max(1));
        prop_assert_eq!(&RunReport::from_records(&rotated), &reference);
        let mut reversed = records;
        reversed.reverse();
        prop_assert_eq!(&RunReport::from_records(&reversed), &reference);
        prop_assert_eq!(RunReport::from_records(&reversed).to_json(), reference.to_json());
    }
}
