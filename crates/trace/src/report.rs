//! Cross-rank reduction of [`RankRecord`]s into a run-level report.
//!
//! The reduction is an `allgather` of `Wire`-encoded per-rank records
//! followed by a *pure* fold ([`RunReport::from_records`]) that every rank
//! computes identically: records are sorted by rank before any arithmetic,
//! so the report is independent of arrival order (pinned by the property
//! suite). The JSON serialization is hand-rolled with a fixed key order and
//! Rust's shortest-roundtrip float formatting, making it bitwise
//! reproducible — the golden-snapshot suite and the schedule checker both
//! compare it as a string.

use crate::{Counter, CounterSet, Phase, RankRecord, COUNTERS, PHASES};
use hot_comm::Comm;

/// Schema identifier stamped into every JSON report. Bump the suffix when
/// the field set, key order, or semantics of any value change.
pub const SCHEMA: &str = "hot-trace/v4";

/// Min/mean/max of a per-rank quantity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankStat {
    /// Smallest per-rank value.
    pub min: f64,
    /// Arithmetic mean over ranks (rank-ordered summation).
    pub mean: f64,
    /// Largest per-rank value.
    pub max: f64,
}

impl RankStat {
    /// Stats over one value per rank (`values[r]` is rank `r`'s).
    ///
    /// # Panics
    /// Panics on an empty slice — a report over zero ranks is meaningless.
    pub fn over_ranks(values: &[f64]) -> RankStat {
        assert!(!values.is_empty(), "RankStat over zero ranks");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        RankStat { min, mean: sum / values.len() as f64, max }
    }
}

/// One row of the phase table: a phase's exclusive counters summed over
/// ranks, plus the per-rank model-seconds skew.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseRow {
    /// Phase label.
    pub phase: Phase,
    /// Exclusive counters summed across ranks.
    pub counters: CounterSet,
    /// Per-rank exclusive model seconds (min/mean/max over ranks).
    pub seconds: RankStat,
}

/// The run-level report reduced from every rank's ledger.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Ranks that contributed.
    pub np: u32,
    /// Rank 0's span structure `(phase, depth)`, locking the instrumented
    /// call shape into the golden snapshot.
    pub spans: Vec<(Phase, u8)>,
    /// One row per phase that appears on any rank, in canonical order.
    pub rows: Vec<PhaseRow>,
    /// Counters summed across all ranks and phases.
    pub totals: CounterSet,
    /// Per-rank total model seconds.
    pub seconds: RankStat,
}

impl RunReport {
    /// Pure fold of per-rank records into a report.
    ///
    /// Records are sorted by rank first, so the result does not depend on
    /// the order they arrive in.
    ///
    /// # Panics
    /// Panics on zero records or duplicate ranks.
    pub fn from_records(records: &[RankRecord]) -> RunReport {
        assert!(!records.is_empty(), "RunReport over zero records");
        let mut recs: Vec<&RankRecord> = records.iter().collect();
        recs.sort_by_key(|r| r.rank);
        for pair in recs.windows(2) {
            assert!(pair[0].rank != pair[1].rank, "duplicate rank {} in reduce", pair[0].rank);
        }
        let np = recs.len() as u32;

        let mut totals = CounterSet::new();
        for r in &recs {
            totals.merge(&r.totals);
        }

        let mut rows = Vec::new();
        for &phase in &PHASES {
            let mut counters = CounterSet::new();
            let mut secs = vec![0.0f64; recs.len()];
            let mut present = false;
            for (i, r) in recs.iter().enumerate() {
                for s in r.spans.iter().filter(|s| s.phase == phase) {
                    present = true;
                    counters.merge(&s.exclusive);
                    secs[i] += s.self_seconds;
                }
            }
            if present {
                rows.push(PhaseRow { phase, counters, seconds: RankStat::over_ranks(&secs) });
            }
        }

        let per_rank_secs: Vec<f64> = recs.iter().map(|r| r.total_seconds()).collect();
        RunReport {
            np,
            spans: recs[0].spans.iter().map(|s| (s.phase, s.depth)).collect(),
            rows,
            totals,
            seconds: RankStat::over_ranks(&per_rank_secs),
        }
    }

    /// Report over a single local ledger (serial codes, rank 0 only).
    pub fn from_single(ledger: &crate::Ledger) -> RunReport {
        RunReport::from_records(&[ledger.rank_record(0)])
    }

    /// Row for `phase`, when present.
    pub fn row(&self, phase: Phase) -> Option<&PhaseRow> {
        self.rows.iter().find(|r| r.phase == phase)
    }

    /// The paper-style phase table, fixed-width text.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<11} {:>14} {:>12} {:>12} {:>8} {:>11} {:>11} {:>11} {:>11}",
            "phase", "flops", "p-p", "p-c", "msgs", "bytes", "min(s)", "mean(s)", "max(s)"
        );
        for row in &self.rows {
            let c = &row.counters;
            let _ = writeln!(
                out,
                "{:<11} {:>14} {:>12} {:>12} {:>8} {:>11} {:>11.4e} {:>11.4e} {:>11.4e}",
                row.phase.name(),
                c.get(Counter::Flops),
                c.get(Counter::PpInteractions),
                c.get(Counter::PcInteractions),
                c.get(Counter::MsgsSent),
                c.get(Counter::BytesSent),
                row.seconds.min,
                row.seconds.mean,
                row.seconds.max,
            );
        }
        let _ = writeln!(
            out,
            "{:<11} {:>14} {:>12} {:>12} {:>8} {:>11} {:>11.4e} {:>11.4e} {:>11.4e}",
            "total",
            self.totals.get(Counter::Flops),
            self.totals.get(Counter::PpInteractions),
            self.totals.get(Counter::PcInteractions),
            self.totals.get(Counter::MsgsSent),
            self.totals.get(Counter::BytesSent),
            self.seconds.min,
            self.seconds.mean,
            self.seconds.max,
        );
        let gflops = if self.seconds.max > 0.0 {
            self.totals.get(Counter::Flops) as f64 / self.seconds.max / 1e9
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "np {} · {} interactions · {:.3} model Gflops (total flops / busiest rank)",
            self.np,
            self.totals.interactions(),
            gflops
        );
        out
    }

    /// Deterministic, schema-versioned JSON.
    ///
    /// Hand-rolled: fixed key order, no whitespace variance, shortest
    /// round-trip float formatting. Two runs that recorded the same events
    /// produce the same bytes.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"np\": {},\n", self.np));
        s.push_str("  \"spans\": [");
        for (i, (phase, depth)) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{{\"phase\": \"{}\", \"depth\": {depth}}}", phase.name()));
        }
        s.push_str("],\n");
        s.push_str("  \"phases\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"phase\": \"{}\", \"counters\": {}, \"seconds\": {}}}{}\n",
                row.phase.name(),
                json_counters(&row.counters),
                json_stat(&row.seconds),
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"totals\": {},\n", json_counters(&self.totals)));
        s.push_str(&format!("  \"seconds\": {}\n", json_stat(&self.seconds)));
        s.push_str("}\n");
        s
    }

    /// Write [`RunReport::to_json`] to `path`, creating parent directories.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }
}

fn json_counters(c: &CounterSet) -> String {
    let fields: Vec<String> =
        COUNTERS.iter().map(|&k| format!("\"{}\": {}", k.name(), c.get(k))).collect();
    format!("{{{}}}", fields.join(", "))
}

fn json_stat(s: &RankStat) -> String {
    format!(
        "{{\"min\": {}, \"mean\": {}, \"max\": {}}}",
        json_f64(s.min),
        json_f64(s.mean),
        json_f64(s.max)
    )
}

/// Shortest-roundtrip decimal for a finite f64 — Rust's `{:?}` formatting,
/// which is deterministic across runs and platforms.
pub(crate) fn json_f64(v: f64) -> String {
    assert!(v.is_finite(), "non-finite value {v} in trace JSON");
    format!("{v:?}")
}

/// Reduce one rank's ledger across the whole machine.
///
/// Every rank calls this collectively (it is an `allgather` underneath)
/// and every rank returns the same [`RunReport`]. The gather runs on the
/// collective tag space, so it composes with user traffic.
pub fn reduce(comm: &mut Comm, ledger: &crate::Ledger) -> RunReport {
    let rec = ledger.rank_record(comm.rank());
    let all = comm.allgather(rec);
    RunReport::from_records(&all)
}

#[cfg(test)]
mod tests {
    use hot_comm::RunConfig;
    use super::*;
    use crate::{Ledger, ModelClock};

    fn sample_ledger(rank: u32, scale: u64) -> RankRecord {
        let mut l = Ledger::new(ModelClock::paper_loki());
        l.begin(Phase::Step);
        l.span(Phase::Decomp, |l| {
            l.add(Counter::BodiesExchanged, 10 * scale);
            l.add(Counter::MsgsSent, 4);
            l.add(Counter::BytesSent, 320 * scale);
        });
        l.span(Phase::Force, |l| {
            l.add(Counter::PpInteractions, 100 * scale);
            l.add(Counter::Flops, 3800 * scale);
        });
        l.end();
        l.rank_record(rank)
    }

    #[test]
    fn report_sums_counters_and_tracks_skew() {
        let recs = vec![sample_ledger(0, 1), sample_ledger(1, 3)];
        let rep = RunReport::from_records(&recs);
        assert_eq!(rep.np, 2);
        assert_eq!(rep.totals.get(Counter::PpInteractions), 400);
        let force = rep.row(Phase::Force).expect("force row");
        assert_eq!(force.counters.get(Counter::Flops), 4 * 3800);
        assert!(force.seconds.min < force.seconds.max);
        assert!((force.seconds.mean - (force.seconds.min + force.seconds.max) / 2.0).abs() < 1e-18);
        // Span structure is rank 0's.
        assert_eq!(rep.spans, vec![(Phase::Step, 0), (Phase::Decomp, 1), (Phase::Force, 1)]);
    }

    #[test]
    fn json_is_stable_and_versioned() {
        let recs = vec![sample_ledger(0, 1), sample_ledger(1, 3)];
        let a = RunReport::from_records(&recs).to_json();
        let b = RunReport::from_records(&recs).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"hot-trace/v4\""));
        assert!(a.contains("\"pp_interactions\": 400"));
    }

    #[test]
    fn table_lists_phases_and_totals() {
        let rep = RunReport::from_records(&[sample_ledger(0, 2)]);
        let t = rep.render_table();
        assert!(t.contains("decomp"));
        assert!(t.contains("force"));
        assert!(t.contains("total"));
        assert!(t.contains("model Gflops"));
    }

    #[test]
    fn reduce_agrees_on_every_rank() {
        let out = RunConfig::builder().np(4).run(|comm| {
            let mut l = Ledger::new(ModelClock::paper_loki());
            l.span(Phase::Force, |l| {
                l.add(Counter::PpInteractions, u64::from(comm.rank()) * 7 + 1);
            });
            reduce(comm, &l).to_json()
        });
        let first = &out.results[0];
        assert!(out.results.iter().all(|j| j == first));
        assert!(first.contains("\"np\": 4"));
        // 1 + 8 + 15 + 22 interactions.
        assert!(first.contains("\"pp_interactions\": 46"));
    }

    #[test]
    #[should_panic(expected = "duplicate rank")]
    fn duplicate_ranks_rejected() {
        let _ = RunReport::from_records(&[sample_ledger(1, 1), sample_ledger(1, 2)]);
    }
}
