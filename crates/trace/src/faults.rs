//! Fault/recovery reporting: what the reliable transport did to survive.
//!
//! The deterministic ledger ([`crate::Ledger`] → [`crate::RunReport`])
//! records only *logical* traffic, so its JSON is bitwise identical with
//! and without fault injection — that invariance is the whole acceptance
//! criterion for the fault layer. Retries, timeouts and CRC rejections are
//! therefore deliberately **not** [`crate::Counter`]s: adding them to the
//! ledger vocabulary would either always read zero (useless) or differ
//! between faulty and fault-free runs (breaking the golden contract).
//!
//! Instead they get their own report with its own schema tag. A
//! [`FaultReport`] is reduced from the per-rank [`ReliabilityStats`] and
//! the machine-wide injection ledger that [`hot_comm::RunOutput`] already
//! carries, and is explicitly *outside* the determinism contract: its
//! numbers may vary across schedules (a race can cause a spurious
//! retransmit that dup-suppression absorbs). What is pinned about it is
//! the schema and one cross-invariant: if the plan injected nothing, the
//! recovery layer must have nothing to report ([`FaultReport::is_quiet`]).

use crate::report::json_f64;
use hot_comm::{FaultConfig, InjectedFaults, ReliabilityStats};

/// Schema identifier for the fault-report JSON. Separate from the trace
/// [`crate::SCHEMA`] because the two artifacts have different stability
/// guarantees: trace JSON is bitwise-pinned, fault JSON is not.
pub const FAULT_SCHEMA: &str = "hot-trace/faults-v2";

/// Recovery activity reduced over a whole run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultReport {
    /// Ranks in the run.
    pub np: u32,
    /// The fault configuration the run was driven with, if any.
    pub config: Option<FaultConfig>,
    /// Per-rank recovery counters, indexed by rank.
    pub per_rank: Vec<ReliabilityStats>,
    /// Recovery counters summed over ranks.
    pub totals: ReliabilityStats,
    /// Faults the plan actually injected, machine-wide.
    pub injected: InjectedFaults,
}

impl FaultReport {
    /// Reduce per-rank reliability stats and the injection ledger into a
    /// report. `reliability` and `injected` come straight off
    /// `hot_comm::RunOutput`.
    pub fn from_run(
        config: Option<FaultConfig>,
        reliability: &[ReliabilityStats],
        injected: InjectedFaults,
    ) -> FaultReport {
        let mut totals = ReliabilityStats::default();
        for r in reliability {
            totals.merge(r);
        }
        FaultReport {
            np: reliability.len() as u32,
            config,
            per_rank: reliability.to_vec(),
            totals,
            injected,
        }
    }

    /// True when nothing was injected *and* nothing was recovered — the
    /// required state of a fault-free (or transport-less) run.
    pub fn is_quiet(&self) -> bool {
        self.injected.total() == 0 && self.totals.is_quiet()
    }

    /// Deterministic-format JSON (fixed key order; the *values* are not
    /// part of any golden contract — see the module docs).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{FAULT_SCHEMA}\",\n"));
        s.push_str(&format!("  \"np\": {},\n", self.np));
        match &self.config {
            Some(c) => s.push_str(&format!("  \"config\": {},\n", json_config(c))),
            None => s.push_str("  \"config\": null,\n"),
        }
        s.push_str(&format!("  \"injected\": {},\n", json_injected(&self.injected)));
        s.push_str("  \"per_rank\": [\n");
        for (i, r) in self.per_rank.iter().enumerate() {
            s.push_str(&format!(
                "    {}{}\n",
                json_reliability(r),
                if i + 1 < self.per_rank.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"totals\": {}\n", json_reliability(&self.totals)));
        s.push_str("}\n");
        s
    }

    /// Human-readable summary table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if let Some(c) = &self.config {
            let _ = writeln!(
                out,
                "fault plan: seed {} · drop {} dup {} delay {} (≤{}) corrupt {} stall {} \
                 kill {} in [{}, {})",
                c.seed,
                c.drop,
                c.duplicate,
                c.delay,
                c.max_delay_slots,
                c.corrupt,
                c.stall,
                c.kill,
                c.kill_window.0,
                c.kill_window.1
            );
        } else {
            let _ = writeln!(out, "fault plan: none");
        }
        let i = &self.injected;
        let _ = writeln!(
            out,
            "injected:   {} total ({} drops, {} dups, {} corruptions, {} delays, {} stalls, \
             {} kills)",
            i.total(),
            i.drops,
            i.duplicates,
            i.corruptions,
            i.delays,
            i.stalls,
            i.kills
        );
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>9} {:>12} {:>9} {:>8} {:>13} {:>9} {:>9}",
            "rank", "retries", "timeouts", "crc_rejects", "dups", "stalls", "backoff_units",
            "suspects", "dead"
        );
        for (rank, r) in self.per_rank.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<6} {:>9} {:>9} {:>12} {:>9} {:>8} {:>13} {:>9} {:>9}",
                rank,
                r.retries,
                r.timeouts,
                r.crc_rejects,
                r.dup_suppressed,
                r.stalls,
                r.backoff_units,
                r.suspect_events,
                r.dead_confirms
            );
        }
        let t = &self.totals;
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>9} {:>12} {:>9} {:>8} {:>13} {:>9} {:>9}",
            "total",
            t.retries,
            t.timeouts,
            t.crc_rejects,
            t.dup_suppressed,
            t.stalls,
            t.backoff_units,
            t.suspect_events,
            t.dead_confirms
        );
        out
    }
}

fn json_config(c: &FaultConfig) -> String {
    format!(
        "{{\"seed\": {}, \"drop\": {}, \"duplicate\": {}, \"delay\": {}, \
         \"max_delay_slots\": {}, \"corrupt\": {}, \"stall\": {}, \
         \"max_faults_per_frame\": {}, \"kill\": {}, \"kill_window\": [{}, {}]}}",
        c.seed,
        json_f64(c.drop),
        json_f64(c.duplicate),
        json_f64(c.delay),
        c.max_delay_slots,
        json_f64(c.corrupt),
        json_f64(c.stall),
        c.max_faults_per_frame,
        json_f64(c.kill),
        c.kill_window.0,
        c.kill_window.1
    )
}

fn json_injected(i: &InjectedFaults) -> String {
    format!(
        "{{\"drops\": {}, \"duplicates\": {}, \"corruptions\": {}, \"delays\": {}, \
         \"stalls\": {}, \"kills\": {}}}",
        i.drops, i.duplicates, i.corruptions, i.delays, i.stalls, i.kills
    )
}

fn json_reliability(r: &ReliabilityStats) -> String {
    format!(
        "{{\"retries\": {}, \"timeouts\": {}, \"crc_rejects\": {}, \"dup_suppressed\": {}, \
         \"stalls\": {}, \"backoff_units\": {}, \"suspect_events\": {}, \"dead_confirms\": {}}}",
        r.retries,
        r.timeouts,
        r.crc_rejects,
        r.dup_suppressed,
        r.stalls,
        r.backoff_units,
        r.suspect_events,
        r.dead_confirms
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(retries: u64, crc: u64) -> ReliabilityStats {
        ReliabilityStats { retries, crc_rejects: crc, ..Default::default() }
    }

    #[test]
    fn totals_sum_over_ranks() {
        let rep = FaultReport::from_run(
            Some(FaultConfig::hostile(7)),
            &[stats(2, 1), stats(3, 0), stats(0, 4)],
            InjectedFaults { drops: 5, ..Default::default() },
        );
        assert_eq!(rep.np, 3);
        assert_eq!(rep.totals.retries, 5);
        assert_eq!(rep.totals.crc_rejects, 5);
        assert!(!rep.is_quiet());
    }

    #[test]
    fn quiet_run_is_quiet() {
        let rep = FaultReport::from_run(
            None,
            &[ReliabilityStats::default(); 4],
            InjectedFaults::default(),
        );
        assert!(rep.is_quiet());
    }

    #[test]
    fn json_has_schema_and_fixed_keys() {
        let rep = FaultReport::from_run(
            Some(FaultConfig::hostile(1)),
            &[stats(1, 0), stats(0, 2)],
            InjectedFaults { corruptions: 2, ..Default::default() },
        );
        let j = rep.to_json();
        assert!(j.contains("\"schema\": \"hot-trace/faults-v2\""));
        assert!(j.contains("\"corruptions\": 2"));
        assert!(j.contains("\"crc_rejects\": 2"));
        // v2 additions: the crash-stop plan, kill ledger, and detector
        // escalation counters all appear with fixed keys.
        assert!(j.contains("\"kill\": "));
        assert!(j.contains("\"kill_window\": ["));
        assert!(j.contains("\"kills\": 0"));
        assert!(j.contains("\"suspect_events\": 0"));
        assert!(j.contains("\"dead_confirms\": 0"));
        // Deterministic formatting: same report, same bytes.
        assert_eq!(j, rep.to_json());
        // A plan-less report still serializes.
        let none = FaultReport::from_run(None, &[stats(0, 0)], InjectedFaults::default());
        assert!(none.to_json().contains("\"config\": null"));
    }

    #[test]
    fn table_mentions_plan_and_ranks() {
        let rep = FaultReport::from_run(
            Some(FaultConfig::hostile(3)),
            &[stats(4, 1)],
            InjectedFaults { drops: 4, corruptions: 1, ..Default::default() },
        );
        let t = rep.render_table();
        assert!(t.contains("fault plan: seed 3"));
        assert!(t.contains("retries"));
        assert!(t.contains("total"));
    }
}
