//! `hot-trace`: a deterministic per-rank span/counter ledger.
//!
//! The paper's claims are *tables* — per-phase timing breakdowns (domain
//! decomposition, tree build, traversal, force evaluation, data migration),
//! flop rates, and message traffic. This crate is the observability layer
//! that produces those tables from the reproduction, under one hard rule:
//!
//! **everything recorded here is a pure function of inputs and seeds.**
//!
//! There is no wall clock anywhere in this crate. Span "times" are *model
//! seconds*, derived from monotonic event counters through the same
//! analytic cost model (`hot_comm::NetworkModel` + a sustained-Mflops rate)
//! that `hot-machine` uses for its predictions. Consequently a ledger — and
//! the JSON report reduced from it — is bitwise identical across repeated
//! runs and across every fuzzed message schedule, which is exactly what the
//! golden-snapshot suite and `hot-analyze schedules` assert.
//!
//! The moving parts:
//!
//! * [`Counter`] / [`CounterSet`] — a fixed vocabulary of monotonic event
//!   counters (flops, P-P/P-C interactions, cells opened/built, hash
//!   probes, requests, messages, bytes).
//! * [`ModelClock`] — converts a [`CounterSet`] into model seconds.
//! * [`Phase`] — the paper's phase names (decomp / tree build / walk /
//!   force / comm / step).
//! * [`Ledger`] — per-rank recorder: nested [`Phase`] spans, counters
//!   attributed to the innermost open span, inclusive/exclusive roll-up.
//! * [`RankRecord`] — a `Wire`-serializable snapshot of one rank's ledger,
//!   reduced across ranks (see [`report`]) into a [`report::RunReport`]
//!   with min/mean/max-per-rank skew.
//!
//! What may be recorded where is a *determinism contract*, documented in
//! VERIFICATION.md: collective-phase instrumentation may use raw
//! `TrafficStats` deltas (bitwise schedule-independent, enforced by the
//! schedule checker), but the asynchronous walk phase must use the ABM's
//! logical counters (`posted`/`delivered`/bytes), never its batch counts —
//! batch boundaries legitimately depend on arrival interleaving.

use hot_comm::{NetworkModel, TrafficStats, Wire};

pub mod faults;
pub mod report;

pub use faults::{FaultReport, FAULT_SCHEMA};
pub use report::{reduce, RankStat, RunReport, SCHEMA};

/// The monotonic event counters the ledger understands.
///
/// The set is fixed (and schema-versioned through [`SCHEMA`]) so that
/// golden reports stay comparable across runs and machines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Counter {
    /// Flops, under the paper's fixed per-interaction convention
    /// (38/70/123 flops — see `hot-base`).
    Flops,
    /// Particle–particle interactions (self-pairs excluded).
    PpInteractions,
    /// Particle–cell (multipole) interactions.
    PcInteractions,
    /// Cells opened during traversal (MAC rejections that recursed).
    CellsOpened,
    /// Tree cells constructed.
    CellsBuilt,
    /// Hash-table slot probes in the *local* key table. Only recorded for
    /// deterministic single-writer tables (the local tree); the remote-cell
    /// cache's layout depends on reply arrival order and is never counted.
    HashProbes,
    /// Remote cell-child requests issued by the distributed walk.
    CellRequests,
    /// Remote leaf-body requests issued by the distributed walk.
    BodyRequests,
    /// Bodies received in the domain-decomposition exchange.
    BodiesExchanged,
    /// Messages sent (collective phases: wire messages; walk phase:
    /// logical ABM messages posted).
    MsgsSent,
    /// Bytes sent (same sourcing rule as [`Counter::MsgsSent`]).
    BytesSent,
    /// Messages received.
    MsgsRecvd,
    /// Bytes received.
    BytesRecvd,
    /// P-P source *entries* pushed into interaction lists during the walk
    /// (list-build side). One entry fans out to one interaction per sink in
    /// the group, so `PpInteractions / PpListed` ≈ the group-size
    /// amortization the paper's list split buys.
    PpListed,
    /// P-C accepted-cell entries pushed into interaction lists.
    PcListed,
    /// Globally synchronized request rounds of the coalesced walk: drains
    /// that produced at least one multi-key request on this rank. A round
    /// boundary is a machine-wide quiescent point (every outstanding
    /// request answered), so the count is a pure function of the walk.
    WalkRounds,
    /// Remote cells installed speculatively (piggybacked on a children
    /// reply without having been requested).
    PrefetchedCells,
    /// Prefetched parent cells the walk later opened — each hit is one
    /// request round-trip the speculation saved.
    PrefetchHits,
    /// Wire bytes of prefetched cell records the walk never opened.
    PrefetchWastedBytes,
    /// Steps on which the adaptive decomposition actually moved interval
    /// cut points (the skew trigger fired). Zero under `DecompPolicy::Static`.
    RebalanceSteps,
    /// Bodies received through the incremental key-range migration (the
    /// minimal diff between old and new intervals — the adaptive analogue
    /// of [`Counter::BodiesExchanged`]).
    MigratedBodies,
    /// Wire bytes received in migration batches.
    MigratedBytes,
}

/// Number of distinct counters.
pub const COUNTER_COUNT: usize = 22;

/// Every counter, in canonical (schema) order.
pub const COUNTERS: [Counter; COUNTER_COUNT] = [
    Counter::Flops,
    Counter::PpInteractions,
    Counter::PcInteractions,
    Counter::CellsOpened,
    Counter::CellsBuilt,
    Counter::HashProbes,
    Counter::CellRequests,
    Counter::BodyRequests,
    Counter::BodiesExchanged,
    Counter::MsgsSent,
    Counter::BytesSent,
    Counter::MsgsRecvd,
    Counter::BytesRecvd,
    Counter::PpListed,
    Counter::PcListed,
    Counter::WalkRounds,
    Counter::PrefetchedCells,
    Counter::PrefetchHits,
    Counter::PrefetchWastedBytes,
    Counter::RebalanceSteps,
    Counter::MigratedBodies,
    Counter::MigratedBytes,
];

impl Counter {
    /// Canonical index into a [`CounterSet`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Counter::Flops => 0,
            Counter::PpInteractions => 1,
            Counter::PcInteractions => 2,
            Counter::CellsOpened => 3,
            Counter::CellsBuilt => 4,
            Counter::HashProbes => 5,
            Counter::CellRequests => 6,
            Counter::BodyRequests => 7,
            Counter::BodiesExchanged => 8,
            Counter::MsgsSent => 9,
            Counter::BytesSent => 10,
            Counter::MsgsRecvd => 11,
            Counter::BytesRecvd => 12,
            Counter::PpListed => 13,
            Counter::PcListed => 14,
            Counter::WalkRounds => 15,
            Counter::PrefetchedCells => 16,
            Counter::PrefetchHits => 17,
            Counter::PrefetchWastedBytes => 18,
            Counter::RebalanceSteps => 19,
            Counter::MigratedBodies => 20,
            Counter::MigratedBytes => 21,
        }
    }

    /// Stable `snake_case` name used in the JSON schema.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Flops => "flops",
            Counter::PpInteractions => "pp_interactions",
            Counter::PcInteractions => "pc_interactions",
            Counter::CellsOpened => "cells_opened",
            Counter::CellsBuilt => "cells_built",
            Counter::HashProbes => "hash_probes",
            Counter::CellRequests => "cell_requests",
            Counter::BodyRequests => "body_requests",
            Counter::BodiesExchanged => "bodies_exchanged",
            Counter::MsgsSent => "msgs_sent",
            Counter::BytesSent => "bytes_sent",
            Counter::MsgsRecvd => "msgs_recvd",
            Counter::BytesRecvd => "bytes_recvd",
            Counter::PpListed => "pp_listed",
            Counter::PcListed => "pc_listed",
            Counter::WalkRounds => "walk_rounds",
            Counter::PrefetchedCells => "prefetched_cells",
            Counter::PrefetchHits => "prefetch_hits",
            Counter::PrefetchWastedBytes => "prefetch_wasted_bytes",
            Counter::RebalanceSteps => "rebalance_steps",
            Counter::MigratedBodies => "migrated_bodies",
            Counter::MigratedBytes => "migrated_bytes",
        }
    }
}

/// A fixed-width vector of the 22 [`Counter`] values.
///
/// Merging is componentwise addition, so it is associative and commutative
/// (the property suite pins this) — a `CounterSet` can be reduced across
/// ranks in any order.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CounterSet {
    vals: [u64; COUNTER_COUNT],
}

impl CounterSet {
    /// All-zero set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read one counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c.index()]
    }

    /// Bump one counter by `n`.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.vals[c.index()] += n;
    }

    /// Componentwise sum.
    pub fn merge(&mut self, o: &CounterSet) {
        for (a, b) in self.vals.iter_mut().zip(&o.vals) {
            *a += *b;
        }
    }

    /// Componentwise saturating difference (`self − o`).
    pub fn minus(&self, o: &CounterSet) -> CounterSet {
        let mut out = *self;
        for (a, b) in out.vals.iter_mut().zip(&o.vals) {
            *a = a.saturating_sub(*b);
        }
        out
    }

    /// Componentwise `self ≤ o`.
    pub fn le(&self, o: &CounterSet) -> bool {
        self.vals.iter().zip(&o.vals).all(|(a, b)| a <= b)
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }

    /// Total interactions (P-P + P-C).
    pub fn interactions(&self) -> u64 {
        self.get(Counter::PpInteractions) + self.get(Counter::PcInteractions)
    }
}

impl Wire for CounterSet {
    fn wire_size(&self) -> usize {
        8 * COUNTER_COUNT
    }

    fn encode(&self, buf: &mut bytes::BytesMut) {
        for v in &self.vals {
            v.encode(buf);
        }
    }

    fn decode(buf: &mut bytes::Bytes) -> Self {
        let mut vals = [0u64; COUNTER_COUNT];
        for v in &mut vals {
            *v = u64::decode(buf);
        }
        CounterSet { vals }
    }
}

/// Converts counters into deterministic *model seconds*.
///
/// Compute time charges recorded flops against a sustained per-processor
/// Mflops rate; communication time charges recorded messages and bytes
/// through [`NetworkModel::rank_comm_time`] — the same function
/// `hot-machine` uses, so the ledger and the machine cost model can never
/// disagree about what a byte on the wire costs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelClock {
    /// Network cost parameters.
    pub network: NetworkModel,
    /// Sustained N-body Mflops per processor.
    pub mflops_per_proc: f64,
}

impl ModelClock {
    /// Clock over an explicit network model and compute rate.
    pub fn new(network: NetworkModel, mflops_per_proc: f64) -> Self {
        ModelClock { network, mflops_per_proc }
    }

    /// The paper's measured Loki constants ([`NetworkModel::loki`] plus
    /// 74.3 sustained Mflops/proc, as in `hot-machine::specs::LOKI`).
    pub fn paper_loki() -> Self {
        ModelClock { network: NetworkModel::loki(), mflops_per_proc: 74.3 }
    }

    /// Model seconds for a counter set: compute + communication.
    pub fn seconds(&self, c: &CounterSet) -> f64 {
        let compute = c.get(Counter::Flops) as f64 / (self.mflops_per_proc * 1e6);
        let traffic = TrafficStats {
            sends: c.get(Counter::MsgsSent),
            bytes_sent: c.get(Counter::BytesSent),
            recvs: c.get(Counter::MsgsRecvd),
            bytes_recvd: c.get(Counter::BytesRecvd),
            max_message: 0,
        };
        compute + self.network.rank_comm_time(&traffic)
    }
}

/// The per-step phases of the paper's diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// One whole simulation step (outermost span).
    Step,
    /// Domain decomposition (sample-sort + body exchange).
    Decomp,
    /// Tree construction: local build, branch exchange, top tree.
    TreeBuild,
    /// Traversal: MAC tests, cell opening, remote data requests.
    Walk,
    /// Force evaluation: the interaction kernels.
    Force,
    /// Explicit communication not inside another phase (reductions,
    /// diagnostics).
    Comm,
}

/// Every phase, in canonical (schema/table) order.
pub const PHASES: [Phase; 6] =
    [Phase::Step, Phase::Decomp, Phase::TreeBuild, Phase::Walk, Phase::Force, Phase::Comm];

impl Phase {
    /// Stable `snake_case` name used in the JSON schema and table.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Step => "step",
            Phase::Decomp => "decomp",
            Phase::TreeBuild => "tree_build",
            Phase::Walk => "walk",
            Phase::Force => "force",
            Phase::Comm => "comm",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            Phase::Step => 0,
            Phase::Decomp => 1,
            Phase::TreeBuild => 2,
            Phase::Walk => 3,
            Phase::Force => 4,
            Phase::Comm => 5,
        }
    }

    fn from_u8(v: u8) -> Phase {
        match v {
            0 => Phase::Step,
            1 => Phase::Decomp,
            2 => Phase::TreeBuild,
            3 => Phase::Walk,
            4 => Phase::Force,
            5 => Phase::Comm,
            other => panic!("invalid Phase discriminant {other} on the wire"),
        }
    }
}

/// One completed span: a phase with counters attributed to it.
///
/// `inclusive` counts everything that happened while the span was open
/// (children included); `exclusive` subtracts the children's inclusive
/// counts. Both are monotone, so exclusive counters — and therefore
/// [`SpanRecord::self_seconds`] — can never go negative (pinned by the
/// property suite).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanRecord {
    /// Phase label.
    pub phase: Phase,
    /// Nesting depth (0 = top level).
    pub depth: u8,
    /// Counters including child spans.
    pub inclusive: CounterSet,
    /// Counters excluding child spans (self-attribution).
    pub exclusive: CounterSet,
    /// Model seconds for the exclusive counters.
    pub self_seconds: f64,
}

impl Wire for SpanRecord {
    fn wire_size(&self) -> usize {
        1 + 1 + self.inclusive.wire_size() + self.exclusive.wire_size() + 8
    }

    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.phase.to_u8().encode(buf);
        self.depth.encode(buf);
        self.inclusive.encode(buf);
        self.exclusive.encode(buf);
        self.self_seconds.encode(buf);
    }

    fn decode(buf: &mut bytes::Bytes) -> Self {
        SpanRecord {
            phase: Phase::from_u8(u8::decode(buf)),
            depth: u8::decode(buf),
            inclusive: CounterSet::decode(buf),
            exclusive: CounterSet::decode(buf),
            self_seconds: f64::decode(buf),
        }
    }
}

/// A `Wire`-serializable snapshot of one rank's finished ledger, the unit
/// reduced across ranks by [`report::reduce`].
#[derive(Clone, Debug, PartialEq)]
pub struct RankRecord {
    /// Originating rank.
    pub rank: u32,
    /// Run-wide counters for this rank (spans and unattributed adds).
    pub totals: CounterSet,
    /// Completed spans in *begin* order (stable across schedules).
    pub spans: Vec<SpanRecord>,
}

impl RankRecord {
    /// Sum of exclusive model seconds across this rank's spans.
    pub fn total_seconds(&self) -> f64 {
        self.spans.iter().map(|s| s.self_seconds).sum()
    }
}

impl Wire for RankRecord {
    fn wire_size(&self) -> usize {
        4 + self.totals.wire_size() + self.spans.wire_size()
    }

    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.rank.encode(buf);
        self.totals.encode(buf);
        self.spans.encode(buf);
    }

    fn decode(buf: &mut bytes::Bytes) -> Self {
        RankRecord {
            rank: u32::decode(buf),
            totals: CounterSet::decode(buf),
            spans: Vec::<SpanRecord>::decode(buf),
        }
    }
}

struct OpenSpan {
    phase: Phase,
    /// Index of the placeholder in `Ledger::spans`.
    idx: usize,
    /// Snapshot of `Ledger::totals` at begin.
    start: CounterSet,
    /// Sum of completed children's inclusive counters.
    children: CounterSet,
}

/// Per-rank recorder: nested phase spans plus monotonic counters.
///
/// Counters added while spans are open are attributed to the innermost
/// open span (and, transitively, to every enclosing span's inclusive
/// count). The ledger holds no clock state — spans are "timed" purely by
/// the counters they accumulate, converted through the [`ModelClock`].
pub struct Ledger {
    clock: ModelClock,
    totals: CounterSet,
    spans: Vec<SpanRecord>,
    open: Vec<OpenSpan>,
}

impl Ledger {
    /// Ledger with an explicit model clock.
    pub fn new(clock: ModelClock) -> Self {
        Ledger { clock, totals: CounterSet::new(), spans: Vec::new(), open: Vec::new() }
    }

    /// Throwaway ledger (paper-Loki clock) for untraced code paths.
    pub fn scratch() -> Self {
        Ledger::new(ModelClock::paper_loki())
    }

    /// The clock this ledger converts counters with.
    pub fn clock(&self) -> ModelClock {
        self.clock
    }

    /// Open a span. Spans nest; close with [`Ledger::end`].
    pub fn begin(&mut self, phase: Phase) {
        let idx = self.spans.len();
        // Placeholder keeps `spans` in *begin* order, which is
        // deterministic; completion order would be too, but begin order
        // matches how a reader thinks about the phase sequence.
        self.spans.push(SpanRecord {
            phase,
            depth: self.open.len() as u8,
            inclusive: CounterSet::new(),
            exclusive: CounterSet::new(),
            self_seconds: 0.0,
        });
        self.open.push(OpenSpan { phase, idx, start: self.totals, children: CounterSet::new() });
    }

    /// Close the innermost open span.
    ///
    /// # Panics
    /// Panics when no span is open — an unbalanced `begin`/`end` pair is
    /// an instrumentation bug, not a runtime condition.
    pub fn end(&mut self) {
        let Some(o) = self.open.pop() else {
            panic!("Ledger::end with no open span");
        };
        let inclusive = self.totals.minus(&o.start);
        let exclusive = inclusive.minus(&o.children);
        let rec = SpanRecord {
            phase: o.phase,
            depth: self.open.len() as u8,
            inclusive,
            exclusive,
            self_seconds: self.clock.seconds(&exclusive),
        };
        self.spans[o.idx] = rec;
        if let Some(parent) = self.open.last_mut() {
            parent.children.merge(&inclusive);
        }
    }

    /// Run `f` inside a `phase` span.
    pub fn span<R>(&mut self, phase: Phase, f: impl FnOnce(&mut Ledger) -> R) -> R {
        self.begin(phase);
        let r = f(self);
        self.end();
        r
    }

    /// Bump a counter (attributed to the innermost open span, if any).
    pub fn add(&mut self, c: Counter, n: u64) {
        self.totals.add(c, n);
    }

    /// Fold a `TrafficStats` *delta* (see `TrafficStats::since`) into the
    /// message/byte counters.
    ///
    /// `max_message` is deliberately dropped: it is an absolute watermark,
    /// not a delta, and is schedule-dependent for batched traffic.
    pub fn add_traffic(&mut self, t: &TrafficStats) {
        self.add(Counter::MsgsSent, t.sends);
        self.add(Counter::BytesSent, t.bytes_sent);
        self.add(Counter::MsgsRecvd, t.recvs);
        self.add(Counter::BytesRecvd, t.bytes_recvd);
    }

    /// Run-wide counters recorded so far.
    pub fn totals(&self) -> &CounterSet {
        &self.totals
    }

    /// Completed spans in begin order (placeholders for still-open spans
    /// are all-zero).
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Snapshot this rank's ledger for reduction.
    ///
    /// # Panics
    /// Panics while any span is still open: a record with half-attributed
    /// counters would make the cross-rank report lie.
    pub fn rank_record(&self, rank: u32) -> RankRecord {
        assert!(
            self.open.is_empty(),
            "Ledger::rank_record with {} span(s) still open",
            self.open.len()
        );
        RankRecord { rank, totals: self.totals, spans: self.spans.clone() }
    }
}

impl std::fmt::Debug for Ledger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ledger")
            .field("totals", &self.totals)
            .field("spans", &self.spans.len())
            .field("open", &self.open.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_comm::{from_bytes, to_bytes};

    #[test]
    fn counters_attribute_to_innermost_span() {
        let mut l = Ledger::scratch();
        l.begin(Phase::Step);
        l.add(Counter::CellsBuilt, 5);
        l.begin(Phase::Walk);
        l.add(Counter::PpInteractions, 100);
        l.end();
        l.add(Counter::CellsBuilt, 2);
        l.end();
        let spans = l.spans();
        assert_eq!(spans.len(), 2);
        let step = spans[0];
        let walk = spans[1];
        assert_eq!(step.phase, Phase::Step);
        assert_eq!(step.depth, 0);
        assert_eq!(walk.depth, 1);
        assert_eq!(step.inclusive.get(Counter::PpInteractions), 100);
        assert_eq!(step.exclusive.get(Counter::PpInteractions), 0);
        assert_eq!(step.exclusive.get(Counter::CellsBuilt), 7);
        assert_eq!(walk.exclusive.get(Counter::PpInteractions), 100);
        assert_eq!(l.totals().get(Counter::PpInteractions), 100);
    }

    #[test]
    fn model_seconds_are_pure_counter_functions() {
        let clock = ModelClock::paper_loki();
        let mut c = CounterSet::new();
        c.add(Counter::Flops, 74_300_000);
        // 74.3 Mflop at 74.3 Mflops/s = exactly one second.
        assert!((clock.seconds(&c) - 1.0).abs() < 1e-12);
        let mut m = CounterSet::new();
        m.add(Counter::MsgsSent, 2);
        // Two sends at 104 µs half-latency each.
        assert!((clock.seconds(&m) - 2.0 * 0.5 * 104e-6).abs() < 1e-15);
    }

    #[test]
    fn rank_record_roundtrips_on_the_wire() {
        let mut l = Ledger::scratch();
        l.span(Phase::Decomp, |l| l.add(Counter::BodiesExchanged, 42));
        l.span(Phase::Force, |l| {
            l.add(Counter::Flops, 38 * 1000);
            l.add(Counter::PpInteractions, 1000);
        });
        let rec = l.rank_record(3);
        let back: RankRecord = from_bytes(to_bytes(&rec));
        assert_eq!(back, rec);
        assert_eq!(back.spans.len(), 2);
        assert!(back.total_seconds() > 0.0);
    }

    #[test]
    #[should_panic(expected = "no open span")]
    fn unbalanced_end_panics() {
        Ledger::scratch().end();
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn rank_record_with_open_span_panics() {
        let mut l = Ledger::scratch();
        l.begin(Phase::Walk);
        let _ = l.rank_record(0);
    }

    #[test]
    fn traffic_fold_drops_max_message() {
        let mut l = Ledger::scratch();
        let t = TrafficStats { sends: 3, bytes_sent: 120, recvs: 2, bytes_recvd: 80, max_message: 999 };
        l.add_traffic(&t);
        assert_eq!(l.totals().get(Counter::MsgsSent), 3);
        assert_eq!(l.totals().get(Counter::BytesSent), 120);
        assert_eq!(l.totals().get(Counter::MsgsRecvd), 2);
        assert_eq!(l.totals().get(Counter::BytesRecvd), 80);
        // max_message must not leak into any counter.
        let sum: u64 = COUNTERS.iter().map(|&c| l.totals().get(c)).sum();
        assert_eq!(sum, 3 + 120 + 2 + 80);
    }
}

#[cfg(test)]
mod proptests;
