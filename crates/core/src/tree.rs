//! Adaptive hashed oct-tree construction over a particle set.
//!
//! Particles are keyed at maximum depth, sorted into Morton order, and the
//! tree is carved out of the sorted array top-down: a cell is a contiguous
//! span of the sorted particle list, and its children are the non-empty
//! 3-bit-digit subranges. Cell records live in a flat `Vec` (children
//! contiguous, parents before children) and are addressable by key through
//! the [`KeyTable`] — the structure the paper names the code after.
//!
//! The moments pass then runs bottom-up: leaf cells form expansions about
//! their charge-weighted centroid (P2M), internal cells merge shifted child
//! expansions (M2M) and bound `bmax`, the largest distance from the
//! expansion center to contained matter, used by the acceptance criteria.

use crate::htable::KeyTable;
use crate::moments::Moments;
use hot_base::{Aabb, Vec3};
use hot_morton::{Key, MAX_DEPTH};

/// Sentinel for "no children".
pub const NO_CHILD: u32 = u32::MAX;

/// One tree cell: a contiguous span of Morton-sorted particles plus its
/// multipole expansion.
#[derive(Clone, Debug)]
pub struct Cell<M> {
    /// Hashed oct-tree key of this cell.
    pub key: Key,
    /// First particle of the span (index into the tree's sorted arrays).
    pub first: u32,
    /// Number of particles in the span.
    pub n: u32,
    /// Index of the first child cell, or [`NO_CHILD`] for leaves.
    pub first_child: u32,
    /// Number of children (1–8 for internal cells).
    pub nchild: u8,
    /// Expansion center (charge-weighted centroid of contents).
    pub center: Vec3,
    /// Upper bound on the distance from `center` to any contained particle.
    pub bmax: f64,
    /// Total absolute charge weight (for centroid computation).
    pub wsum: f64,
    /// Multipole expansion about `center`.
    pub moments: M,
}

impl<M> Cell<M> {
    /// Is this a leaf (no children)?
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.first_child == NO_CHILD
    }

    /// The particle span as a `usize` range.
    #[inline]
    pub fn span(&self) -> std::ops::Range<usize> {
        self.first as usize..(self.first + self.n) as usize
    }
}

/// An adaptive oct-tree over one particle set (one rank's local particles,
/// or the whole problem when run single-image).
#[derive(Debug)]
pub struct Tree<M: Moments> {
    /// Root cube containing every particle.
    pub domain: Aabb,
    /// Leaf bucket size used for this build.
    pub bucket: usize,
    /// Morton keys, sorted ascending.
    pub keys: Vec<Key>,
    /// `order[i]` = original index of the i-th sorted particle.
    pub order: Vec<u32>,
    /// Positions in sorted order.
    pub pos: Vec<Vec3>,
    /// Charges in sorted order.
    pub charge: Vec<M::Charge>,
    /// Cell records; index 0 is the root.
    pub cells: Vec<Cell<M>>,
    /// Key → cell-index table.
    pub table: KeyTable,
}

impl<M: Moments> Tree<M> {
    /// Build a tree over `pos`/`charge` (parallel arrays) inside `domain`
    /// (must be a cube containing all positions). `bucket` is the maximum
    /// leaf occupancy.
    pub fn build(domain: Aabb, pos: &[Vec3], charge: &[M::Charge], bucket: usize) -> Self {
        assert_eq!(pos.len(), charge.len(), "positions and charges must pair up");
        assert!(bucket >= 1);
        let n = pos.len();

        // Key + sort phase. (The paper implements the distributed version of
        // this as a weighted parallel sort; see `decomp`.)
        let mut keyed: Vec<(Key, u32)> = pos
            .iter()
            .enumerate()
            .map(|(i, &p)| (Key::from_point(p, &domain), i as u32))
            .collect();
        keyed.sort_unstable_by_key(|&(k, _)| k);

        let keys: Vec<Key> = keyed.iter().map(|&(k, _)| k).collect();
        let order: Vec<u32> = keyed.iter().map(|&(_, i)| i).collect();
        let spos: Vec<Vec3> = order.iter().map(|&i| pos[i as usize]).collect();
        let scharge: Vec<M::Charge> = order.iter().map(|&i| charge[i as usize]).collect();

        let mut tree = Tree {
            domain,
            bucket,
            keys,
            order,
            pos: spos,
            charge: scharge,
            cells: Vec::new(),
            table: KeyTable::with_capacity((2 * n / bucket.max(1)).max(64)),
        };
        tree.build_cells(0, n as u32);
        tree.compute_moments();
        tree
    }

    /// Incremental rebuild: graft unchanged root-octant subtrees from
    /// `prev` instead of re-carving them.
    ///
    /// The fresh build emits cells as `[root, root's children (digit
    /// order), octant-7 subtree, octant-6 subtree, …]` with every subtree
    /// contiguous and self-contained (`first_child` points inside the
    /// block), and the key table's probe count is a pure function of the
    /// insert sequence and capacity (which depends only on `n`). So copying
    /// an octant block with shifted particle/cell offsets and re-inserting
    /// its keys in block order reproduces the fresh build **bitwise** —
    /// cells, moments, table layout, and `HashProbes` alike. An octant is
    /// reusable when its sorted `(keys, pos, charge)` slice is bitwise
    /// identical to the previous step's; moments depend only on that slice
    /// and the (equal) domain, so they transfer unchanged.
    ///
    /// Returns the rebuilt tree plus the number of root octants grafted
    /// (0–8). Falls back to a fresh build when the domain or bucket
    /// changed, or when either root is a leaf.
    pub fn build_with_reuse(
        domain: Aabb,
        pos: &[Vec3],
        charge: &[M::Charge],
        bucket: usize,
        prev: &Self,
    ) -> (Self, u32)
    where
        M::Charge: PartialEq,
    {
        assert_eq!(pos.len(), charge.len(), "positions and charges must pair up");
        assert!(bucket >= 1);
        let n = pos.len();
        if domain != prev.domain || bucket != prev.bucket || n <= bucket || prev.cells[0].is_leaf()
        {
            return (Self::build(domain, pos, charge, bucket), 0);
        }

        // Key + sort phase, identical to `build`.
        let mut keyed: Vec<(Key, u32)> = pos
            .iter()
            .enumerate()
            .map(|(i, &p)| (Key::from_point(p, &domain), i as u32))
            .collect();
        keyed.sort_unstable_by_key(|&(k, _)| k);
        let keys: Vec<Key> = keyed.iter().map(|&(k, _)| k).collect();
        let order: Vec<u32> = keyed.iter().map(|&(_, i)| i).collect();
        let spos: Vec<Vec3> = order.iter().map(|&i| pos[i as usize]).collect();
        let scharge: Vec<M::Charge> = order.iter().map(|&i| charge[i as usize]).collect();

        // Root-octant slice boundaries in the new and previous sorted arrays.
        let octant_bounds = |ks: &[Key]| -> [usize; 9] {
            let mut b = [0usize; 9];
            let mut lo = 0usize;
            for d in 0..8u8 {
                let last = Key::ROOT.child(d).range_last();
                lo += ks[lo..].partition_point(|&k| k <= last);
                b[d as usize + 1] = lo;
            }
            b
        };
        let nb = octant_bounds(&keys);
        let pb = octant_bounds(&prev.keys);
        debug_assert_eq!(nb[8], n, "octants must cover all keys");

        let mut tree = Tree {
            domain,
            bucket,
            keys,
            order,
            pos: spos,
            charge: scharge,
            cells: Vec::new(),
            table: KeyTable::with_capacity((2 * n / bucket.max(1)).max(64)),
        };

        // Root and the contiguous children block, as a fresh build emits
        // them (n > bucket guarantees the root splits).
        tree.cells.push(Cell {
            key: Key::ROOT,
            first: 0,
            n: n as u32,
            first_child: 1,
            nchild: 0,
            center: Vec3::ZERO,
            bmax: 0.0,
            wsum: 0.0,
            moments: M::default(),
        });
        tree.table.insert(Key::ROOT, 0);
        let mut octants: Vec<(u8, u32)> = Vec::with_capacity(8);
        for d in 0..8u8 {
            let (lo, hi) = (nb[d as usize], nb[d as usize + 1]);
            if hi > lo {
                let child_key = Key::ROOT.child(d);
                let idx = tree.cells.len() as u32;
                tree.cells.push(Cell {
                    key: child_key,
                    first: lo as u32,
                    n: (hi - lo) as u32,
                    first_child: NO_CHILD,
                    nchild: 0,
                    center: Vec3::ZERO,
                    bmax: 0.0,
                    wsum: 0.0,
                    moments: M::default(),
                });
                tree.table.insert(child_key, idx);
                octants.push((d, idx));
            }
        }
        tree.cells[0].nchild = octants.len() as u8;

        // Emit descendant blocks in reverse digit order — the order the
        // fresh build's LIFO stack produces.
        let mut reused = 0u32;
        for &(d, ci) in octants.iter().rev() {
            let (lo, hi) = (nb[d as usize], nb[d as usize + 1]);
            let (plo, phi) = (pb[d as usize], pb[d as usize + 1]);
            let same = hi - lo == phi - plo
                && tree.keys[lo..hi] == prev.keys[plo..phi]
                && tree.pos[lo..hi] == prev.pos[plo..phi]
                && tree.charge[lo..hi] == prev.charge[plo..phi];
            if same {
                // Graft: copy the octant cell's payload and its contiguous
                // descendant block with shifted offsets.
                let okey = tree.cells[ci as usize].key;
                // A bitwise-unchanged non-empty octant was carved by the
                // previous build, so its key is in the previous table; a
                // miss is a graft-logic bug. hot-lint: allow(unwrap-audit)
                let pci = prev.table.get(okey).expect("unchanged octant must exist in prev")
                    as usize;
                let pcell = &prev.cells[pci];
                let pdelta = lo as i64 - plo as i64;
                {
                    let c = &mut tree.cells[ci as usize];
                    c.nchild = pcell.nchild;
                    c.center = pcell.center;
                    c.bmax = pcell.bmax;
                    c.wsum = pcell.wsum;
                    c.moments = pcell.moments;
                }
                if pcell.is_leaf() {
                    reused += 1;
                    continue;
                }
                let bstart = pcell.first_child as usize;
                let bend = Self::subtree_end(&prev.cells, pci);
                let idelta = tree.cells.len() as i64 - bstart as i64;
                tree.cells[ci as usize].first_child = tree.cells.len() as u32;
                for pc in &prev.cells[bstart..bend] {
                    let idx = tree.cells.len() as u32;
                    let mut c = pc.clone();
                    c.first = (i64::from(c.first) + pdelta) as u32;
                    if c.first_child != NO_CHILD {
                        c.first_child = (i64::from(c.first_child) + idelta) as u32;
                    }
                    tree.table.insert(c.key, idx);
                    tree.cells.push(c);
                }
                reused += 1;
            } else {
                // Re-carve this subtree with the same stack discipline,
                // then run its moments bottom-up (block is contiguous and
                // parents precede children).
                let block_start = tree.cells.len();
                tree.carve(vec![ci]);
                let block_end = tree.cells.len();
                for k in (block_start..block_end).rev() {
                    tree.compute_cell_moments(k);
                }
                tree.compute_cell_moments(ci as usize);
            }
        }
        // Root M2M from the finished children.
        tree.compute_cell_moments(0);
        (tree, reused)
    }

    /// Exclusive end of `ci`'s contiguous descendant block. Works because
    /// `carve` emits each subtree as one block with children inside it.
    fn subtree_end(cells: &[Cell<M>], ci: usize) -> usize {
        let mut end = cells[ci].first_child as usize + cells[ci].nchild as usize;
        let mut k = cells[ci].first_child as usize;
        while k < end {
            if !cells[k].is_leaf() {
                end = end.max(cells[k].first_child as usize + cells[k].nchild as usize);
            }
            k += 1;
        }
        end
    }

    /// Carve cells out of the sorted particle array. `first..first+n` is the
    /// root span (all particles for a fresh build).
    fn build_cells(&mut self, first: u32, n: u32) {
        self.cells.push(Cell {
            key: Key::ROOT,
            first,
            n,
            first_child: NO_CHILD,
            nchild: 0,
            center: Vec3::ZERO,
            bmax: 0.0,
            wsum: 0.0,
            moments: M::default(),
        });
        self.table.insert(Key::ROOT, 0);
        self.carve(vec![0u32]);
    }

    /// Split every cell on `stack` (and, transitively, the children this
    /// creates) by the next 3-bit digit. LIFO order: the last cell pushed
    /// has its whole subtree emitted contiguously before the next one is
    /// touched, which is the layout [`Tree::build_with_reuse`] relies on.
    fn carve(&mut self, mut stack: Vec<u32>) {
        while let Some(ci) = stack.pop() {
            let (key, cfirst, cn) = {
                let c = &self.cells[ci as usize];
                (c.key, c.first, c.n)
            };
            if cn as usize <= self.bucket || key.level() >= MAX_DEPTH {
                continue;
            }
            // Partition the span by the next 3-bit digit. Keys are sorted,
            // so each child's particles are a contiguous subrange found by
            // binary search on the child's key interval.
            let span = &self.keys[cfirst as usize..(cfirst + cn) as usize];
            let first_child = self.cells.len() as u32;
            let mut nchild = 0u8;
            let mut child_indices = Vec::with_capacity(8);
            let mut lo = 0usize;
            for d in 0..8u8 {
                let child_key = key.child(d);
                let last = child_key.range_last();
                // End of this child's subrange: first key > range_last.
                let hi = lo + span[lo..].partition_point(|&k| k <= last);
                if hi > lo {
                    let idx = self.cells.len() as u32;
                    self.cells.push(Cell {
                        key: child_key,
                        first: cfirst + lo as u32,
                        n: (hi - lo) as u32,
                        first_child: NO_CHILD,
                        nchild: 0,
                        center: Vec3::ZERO,
                        bmax: 0.0,
                        wsum: 0.0,
                        moments: M::default(),
                    });
                    self.table.insert(child_key, idx);
                    child_indices.push(idx);
                    nchild += 1;
                }
                lo = hi;
            }
            debug_assert_eq!(lo, span.len(), "digit partition must cover the span");
            let c = &mut self.cells[ci as usize];
            c.first_child = first_child;
            c.nchild = nchild;
            // Descend into children that still exceed the bucket.
            stack.extend(child_indices);
        }
    }

    /// Bottom-up moments pass. Children always follow their parent in the
    /// `cells` vec, so a reverse sweep visits children first.
    fn compute_moments(&mut self) {
        for ci in (0..self.cells.len()).rev() {
            self.compute_cell_moments(ci);
        }
    }

    /// P2M (leaf) or M2M (internal) for one cell. Internal cells read their
    /// children, which must already hold finished moments.
    fn compute_cell_moments(&mut self, ci: usize) {
        {
            let cell = &self.cells[ci];
            let geom = cell.key.cell_aabb(&self.domain);
            if cell.is_leaf() {
                let span = cell.span();
                // Centroid.
                let mut wsum = 0.0;
                let mut centroid = Vec3::ZERO;
                for i in span.clone() {
                    let w = M::weight(&self.charge[i]);
                    wsum += w;
                    centroid += self.pos[i] * w;
                }
                let center = if wsum > 0.0 { centroid / wsum } else { geom.center() };
                // Expansion + bmax.
                let mut m = M::default();
                let mut bmax2 = 0.0f64;
                for i in span {
                    let one = M::from_particle(self.pos[i], &self.charge[i], center);
                    m.accumulate_shifted(&one, center, center);
                    bmax2 = bmax2.max((self.pos[i] - center).norm2());
                }
                let c = &mut self.cells[ci];
                c.center = center;
                c.wsum = wsum;
                c.moments = m;
                c.bmax = bmax2.sqrt();
            } else {
                let (first_child, nchild) = (self.cells[ci].first_child, self.cells[ci].nchild);
                let range = first_child as usize..(first_child as usize + nchild as usize);
                // Parent centroid from child centroids.
                let mut wsum = 0.0;
                let mut centroid = Vec3::ZERO;
                for k in range.clone() {
                    let ch = &self.cells[k];
                    wsum += ch.wsum;
                    centroid += ch.center * ch.wsum;
                }
                let center = if wsum > 0.0 { centroid / wsum } else { geom.center() };
                let mut m = M::default();
                let mut bmax = 0.0f64;
                for k in range {
                    let (cm, cc, cb) = {
                        let ch = &self.cells[k];
                        (ch.moments, ch.center, ch.bmax)
                    };
                    m.accumulate_shifted(&cm, cc, center);
                    bmax = bmax.max((cc - center).norm() + cb);
                }
                // The geometric corner distance is an alternative bound;
                // keep the tighter one.
                let corner = {
                    let dmin = (center - geom.min).abs();
                    let dmax = (geom.max - center).abs();
                    dmin.max(dmax).norm()
                };
                let c = &mut self.cells[ci];
                c.center = center;
                c.wsum = wsum;
                c.moments = m;
                c.bmax = bmax.min(corner);
            }
        }
    }

    /// Number of particles.
    pub fn n_particles(&self) -> usize {
        self.pos.len()
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// Record this tree's construction into a trace ledger (cells built
    /// plus the key-table probes spent building). Call right after
    /// [`Tree::build`], inside a `TreeBuild` span; both quantities are
    /// pure functions of the input bodies, so they are safe for the
    /// bitwise-deterministic report.
    pub fn record_build(&self, trace: &mut hot_trace::Ledger) {
        trace.add(hot_trace::Counter::CellsBuilt, self.n_cells() as u64);
        trace.add(hot_trace::Counter::HashProbes, self.table.probes());
    }

    /// The root cell.
    pub fn root(&self) -> &Cell<M> {
        &self.cells[0]
    }

    /// Look a cell up by key.
    pub fn cell_by_key(&self, key: Key) -> Option<&Cell<M>> {
        self.table.get(key).map(|i| &self.cells[i as usize])
    }

    /// Child cell indices of `cell`.
    pub fn children(&self, cell: &Cell<M>) -> std::ops::Range<usize> {
        if cell.is_leaf() {
            0..0
        } else {
            cell.first_child as usize..cell.first_child as usize + cell.nchild as usize
        }
    }

    /// Indices of the "sink group" cells: the shallowest cells holding at
    /// most `max_group` particles. They partition the particle set and are
    /// the units the traversal walks for (the paper traverses per group of
    /// sinks to amortize list construction).
    pub fn groups(&self, max_group: usize) -> Vec<u32> {
        let mut out = Vec::new();
        if self.n_particles() == 0 {
            return out;
        }
        let mut stack = vec![0u32];
        while let Some(ci) = stack.pop() {
            let c = &self.cells[ci as usize];
            if c.n as usize <= max_group || c.is_leaf() {
                if c.n > 0 {
                    out.push(ci);
                }
            } else {
                stack.extend(self.children(c).map(|k| k as u32));
            }
        }
        out
    }

    /// Exhaustive structural validation (test support): spans tile parents,
    /// keys match spans, table agrees, weights conserve.
    pub fn validate(&self) {
        assert!(!self.cells.is_empty());
        let root = &self.cells[0];
        assert_eq!(root.key, Key::ROOT);
        assert_eq!(root.n as usize, self.n_particles());
        for (ci, c) in self.cells.iter().enumerate() {
            assert_eq!(
                self.table.get(c.key),
                Some(ci as u32),
                "table lookup must find cell {ci}"
            );
            // Every particle in the span belongs to the cell's key range.
            for i in c.span() {
                assert!(
                    c.key.is_ancestor_of(self.keys[i]),
                    "particle {i} outside cell {:?}",
                    c.key
                );
            }
            if !c.is_leaf() {
                let kids = self.children(c);
                let mut covered = 0;
                let mut expect_first = c.first;
                for k in kids {
                    let ch = &self.cells[k];
                    assert_eq!(ch.key.parent(), c.key);
                    assert_eq!(ch.first, expect_first, "children must tile the span");
                    expect_first += ch.n;
                    covered += ch.n;
                    assert!(ch.n > 0, "empty child stored");
                }
                assert_eq!(covered, c.n, "children must cover the parent");
            } else {
                assert!(
                    c.n as usize <= self.bucket || c.key.level() == MAX_DEPTH,
                    "oversized leaf at level {}",
                    c.key.level()
                );
            }
            // bmax really bounds the contents.
            for i in c.span() {
                let d = (self.pos[i] - c.center).norm();
                assert!(
                    d <= c.bmax * (1.0 + 1e-12) + 1e-300,
                    "bmax violated: {d} > {}",
                    c.bmax
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::MassMoments;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen())).collect()
    }

    fn unit_masses(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    #[test]
    fn builds_and_validates_uniform() {
        let pos = random_points(2000, 1);
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &unit_masses(2000), 16);
        tree.validate();
        assert_eq!(tree.n_particles(), 2000);
        assert!(tree.n_cells() > 100);
        assert!((tree.root().moments.mass - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn single_particle_tree() {
        let pos = vec![Vec3::splat(0.25)];
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &[2.0], 8);
        tree.validate();
        assert_eq!(tree.n_cells(), 1);
        assert_eq!(tree.root().moments.mass, 2.0);
        assert_eq!(tree.root().center, Vec3::splat(0.25));
        assert_eq!(tree.root().bmax, 0.0);
    }

    #[test]
    fn empty_tree() {
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &[], &[], 8);
        assert_eq!(tree.n_cells(), 1);
        assert_eq!(tree.root().n, 0);
        assert!(tree.groups(10).is_empty());
    }

    #[test]
    fn coincident_particles_stop_at_max_depth() {
        // 20 particles at the same point can never split below bucket size;
        // the build must terminate at MAX_DEPTH with an oversized leaf.
        let pos = vec![Vec3::splat(0.3); 20];
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &unit_masses(20), 4);
        tree.validate();
        let deepest = tree.cells.iter().map(|c| c.key.level()).max().unwrap();
        assert_eq!(deepest, MAX_DEPTH);
    }

    #[test]
    fn root_com_matches_direct() {
        let pos = random_points(500, 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let masses: Vec<f64> = (0..500).map(|_| rng.gen_range(0.5..2.0)).collect();
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &masses, 12);
        let mtot: f64 = masses.iter().sum();
        let com = pos
            .iter()
            .zip(&masses)
            .map(|(&p, &m)| p * m)
            .fold(Vec3::ZERO, |a, b| a + b)
            / mtot;
        assert!((tree.root().moments.mass - mtot).abs() < 1e-9);
        assert!((tree.root().center - com).norm() < 1e-12);
        // Quadrupole about the com matches a direct computation.
        let mut q = hot_base::SymMat3::ZERO;
        for (&p, &m) in pos.iter().zip(&masses) {
            q += hot_base::SymMat3::outer(p - com) * m;
        }
        for i in 0..6 {
            assert!(
                (tree.root().moments.quad.m[i] - q.m[i]).abs() < 1e-9,
                "component {i}"
            );
        }
    }

    #[test]
    fn groups_partition_particles() {
        let pos = random_points(3000, 3);
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &unit_masses(3000), 8);
        let groups = tree.groups(32);
        let mut seen = vec![false; 3000];
        for &g in &groups {
            let c = &tree.cells[g as usize];
            assert!(c.n <= 32 || c.is_leaf());
            for i in c.span() {
                assert!(!seen[i], "particle {i} in two groups");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "groups must cover all particles");
    }

    #[test]
    fn clustered_distribution_builds_deep() {
        // A tight Gaussian clump forces deep refinement locally while the
        // rest of the box stays shallow — the adaptivity the paper's
        // clustered cosmology problems rely on.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut pos = Vec::new();
        for _ in 0..1500 {
            pos.push(Vec3::new(
                0.5 + rng.gen::<f64>() * 1e-4,
                0.5 + rng.gen::<f64>() * 1e-4,
                0.5 + rng.gen::<f64>() * 1e-4,
            ));
        }
        for _ in 0..500 {
            pos.push(Vec3::new(rng.gen(), rng.gen(), rng.gen()));
        }
        let n = pos.len();
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &unit_masses(n), 8);
        tree.validate();
        let deepest = tree.cells.iter().map(|c| c.key.level()).max().unwrap();
        assert!(deepest >= 10, "clump must force deep cells, got {deepest}");
    }

    #[test]
    fn order_is_permutation() {
        let pos = random_points(777, 9);
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &unit_masses(777), 16);
        let mut seen = vec![false; 777];
        for &o in &tree.order {
            assert!(!seen[o as usize]);
            seen[o as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Sorted keys really are sorted.
        assert!(tree.keys.windows(2).all(|w| w[0] <= w[1]));
        // pos[i] corresponds to original pos[order[i]].
        for i in 0..777 {
            assert_eq!(tree.pos[i], pos[tree.order[i] as usize]);
        }
    }

    /// Field-by-field bitwise comparison of two trees (cells + table
    /// probes), strict enough to certify the graft path against a fresh
    /// build.
    fn assert_trees_bitwise_equal(a: &Tree<MassMoments>, b: &Tree<MassMoments>) {
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.n_cells(), b.n_cells(), "cell counts differ");
        for (i, (ca, cb)) in a.cells.iter().zip(&b.cells).enumerate() {
            assert_eq!(ca.key, cb.key, "cell {i} key");
            assert_eq!(ca.first, cb.first, "cell {i} first");
            assert_eq!(ca.n, cb.n, "cell {i} n");
            assert_eq!(ca.first_child, cb.first_child, "cell {i} first_child");
            assert_eq!(ca.nchild, cb.nchild, "cell {i} nchild");
            for (k, (va, vb)) in [
                (ca.center.x, cb.center.x),
                (ca.center.y, cb.center.y),
                (ca.center.z, cb.center.z),
            ]
            .into_iter()
            .enumerate()
            {
                assert_eq!(va.to_bits(), vb.to_bits(), "cell {i} center[{k}]");
            }
            assert_eq!(ca.bmax.to_bits(), cb.bmax.to_bits(), "cell {i} bmax");
            assert_eq!(ca.wsum.to_bits(), cb.wsum.to_bits(), "cell {i} wsum");
            assert_eq!(
                ca.moments.mass.to_bits(),
                cb.moments.mass.to_bits(),
                "cell {i} mass"
            );
            for k in 0..6 {
                assert_eq!(
                    ca.moments.quad.m[k].to_bits(),
                    cb.moments.quad.m[k].to_bits(),
                    "cell {i} quad[{k}]"
                );
            }
        }
    }

    #[test]
    fn reuse_build_matches_fresh_bitwise() {
        // Perturb only particles in the low-x half (octants 0,2,4,6 under
        // the xyz bit interleave): the untouched octants must graft and
        // the result must equal a fresh build bit-for-bit.
        let mut pos = random_points(2500, 17);
        let charge = unit_masses(2500);
        let t0 = Tree::<MassMoments>::build(Aabb::unit(), &pos, &charge, 16);
        for p in &mut pos {
            if p.x < 0.5 {
                p.y = (p.y * 0.9) + 0.05;
            }
        }
        let fresh = Tree::<MassMoments>::build(Aabb::unit(), &pos, &charge, 16);
        let fresh_probes = fresh.table.probes();
        let (reused, grafted) =
            Tree::<MassMoments>::build_with_reuse(Aabb::unit(), &pos, &charge, 16, &t0);
        // Capture before validate(): `get` also counts probes.
        let reused_probes = reused.table.probes();
        assert!(grafted >= 1, "unchanged octants must graft, got {grafted}");
        assert!(grafted < 8, "perturbed octants must rebuild");
        reused.validate();
        assert_trees_bitwise_equal(&reused, &fresh);
        assert_eq!(reused_probes, fresh_probes, "hash probe counts differ");
    }

    #[test]
    fn reuse_build_identical_input_grafts_everything() {
        let pos = random_points(1200, 19);
        let charge = unit_masses(1200);
        let t0 = Tree::<MassMoments>::build(Aabb::unit(), &pos, &charge, 8);
        let t0_probes = t0.table.probes();
        let (reused, grafted) =
            Tree::<MassMoments>::build_with_reuse(Aabb::unit(), &pos, &charge, 8, &t0);
        let reused_probes = reused.table.probes();
        assert_eq!(grafted as usize, t0.root().nchild as usize, "all octants graft");
        assert_trees_bitwise_equal(&reused, &t0);
        assert_eq!(reused_probes, t0_probes, "hash probe counts differ");
    }

    #[test]
    fn reuse_build_falls_back_on_shape_change() {
        let pos = random_points(300, 21);
        let charge = unit_masses(300);
        let t0 = Tree::<MassMoments>::build(Aabb::unit(), &pos, &charge, 8);
        // Different bucket: must fall back to a fresh build.
        let (t1, grafted) =
            Tree::<MassMoments>::build_with_reuse(Aabb::unit(), &pos, &charge, 16, &t0);
        assert_eq!(grafted, 0);
        t1.validate();
        let fresh = Tree::<MassMoments>::build(Aabb::unit(), &pos, &charge, 16);
        assert_trees_bitwise_equal(&t1, &fresh);
    }

    #[test]
    fn reuse_build_handles_particle_count_change() {
        // Drop particles from one octant: offsets shift for every octant
        // below it in emission order, exercising the index deltas.
        let pos = random_points(2000, 23);
        let charge = unit_masses(2000);
        let t0 = Tree::<MassMoments>::build(Aabb::unit(), &pos, &charge, 16);
        let mut kept_pos = Vec::new();
        let mut kept_charge = Vec::new();
        for (p, c) in pos.iter().zip(&charge) {
            // Remove a slice of the high-x half.
            if !(p.x > 0.5 && p.y > 0.8) {
                kept_pos.push(*p);
                kept_charge.push(*c);
            }
        }
        assert!(kept_pos.len() < 2000);
        let fresh = Tree::<MassMoments>::build(Aabb::unit(), &kept_pos, &kept_charge, 16);
        let fresh_probes = fresh.table.probes();
        let (reused, grafted) =
            Tree::<MassMoments>::build_with_reuse(Aabb::unit(), &kept_pos, &kept_charge, 16, &t0);
        let reused_probes = reused.table.probes();
        assert!(grafted >= 1, "low-x octants should still graft");
        reused.validate();
        assert_trees_bitwise_equal(&reused, &fresh);
        assert_eq!(reused_probes, fresh_probes, "hash probe counts differ");
    }

    #[test]
    fn negative_domain_coordinates() {
        let domain = Aabb::cube(Vec3::new(-5.0, 3.0, 100.0), 10.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let pos: Vec<Vec3> = (0..300)
            .map(|_| {
                domain.min
                    + Vec3::new(
                        rng.gen::<f64>() * 20.0,
                        rng.gen::<f64>() * 20.0,
                        rng.gen::<f64>() * 20.0,
                    )
            })
            .collect();
        let tree = Tree::<MassMoments>::build(domain, &pos, &unit_masses(300), 8);
        tree.validate();
    }
}
