//! Adaptive hashed oct-tree construction over a particle set.
//!
//! Particles are keyed at maximum depth, sorted into Morton order, and the
//! tree is carved out of the sorted array top-down: a cell is a contiguous
//! span of the sorted particle list, and its children are the non-empty
//! 3-bit-digit subranges. Cell records live in a flat `Vec` (children
//! contiguous, parents before children) and are addressable by key through
//! the [`KeyTable`] — the structure the paper names the code after.
//!
//! The moments pass then runs bottom-up: leaf cells form expansions about
//! their charge-weighted centroid (P2M), internal cells merge shifted child
//! expansions (M2M) and bound `bmax`, the largest distance from the
//! expansion center to contained matter, used by the acceptance criteria.

use crate::htable::KeyTable;
use crate::moments::Moments;
use hot_base::{Aabb, Vec3};
use hot_morton::{Key, MAX_DEPTH};

/// Sentinel for "no children".
pub const NO_CHILD: u32 = u32::MAX;

/// One tree cell: a contiguous span of Morton-sorted particles plus its
/// multipole expansion.
#[derive(Clone, Debug)]
pub struct Cell<M> {
    /// Hashed oct-tree key of this cell.
    pub key: Key,
    /// First particle of the span (index into the tree's sorted arrays).
    pub first: u32,
    /// Number of particles in the span.
    pub n: u32,
    /// Index of the first child cell, or [`NO_CHILD`] for leaves.
    pub first_child: u32,
    /// Number of children (1–8 for internal cells).
    pub nchild: u8,
    /// Expansion center (charge-weighted centroid of contents).
    pub center: Vec3,
    /// Upper bound on the distance from `center` to any contained particle.
    pub bmax: f64,
    /// Total absolute charge weight (for centroid computation).
    pub wsum: f64,
    /// Multipole expansion about `center`.
    pub moments: M,
}

impl<M> Cell<M> {
    /// Is this a leaf (no children)?
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.first_child == NO_CHILD
    }

    /// The particle span as a `usize` range.
    #[inline]
    pub fn span(&self) -> std::ops::Range<usize> {
        self.first as usize..(self.first + self.n) as usize
    }
}

/// An adaptive oct-tree over one particle set (one rank's local particles,
/// or the whole problem when run single-image).
#[derive(Debug)]
pub struct Tree<M: Moments> {
    /// Root cube containing every particle.
    pub domain: Aabb,
    /// Leaf bucket size used for this build.
    pub bucket: usize,
    /// Morton keys, sorted ascending.
    pub keys: Vec<Key>,
    /// `order[i]` = original index of the i-th sorted particle.
    pub order: Vec<u32>,
    /// Positions in sorted order.
    pub pos: Vec<Vec3>,
    /// Charges in sorted order.
    pub charge: Vec<M::Charge>,
    /// Cell records; index 0 is the root.
    pub cells: Vec<Cell<M>>,
    /// Key → cell-index table.
    pub table: KeyTable,
}

impl<M: Moments> Tree<M> {
    /// Build a tree over `pos`/`charge` (parallel arrays) inside `domain`
    /// (must be a cube containing all positions). `bucket` is the maximum
    /// leaf occupancy.
    pub fn build(domain: Aabb, pos: &[Vec3], charge: &[M::Charge], bucket: usize) -> Self {
        assert_eq!(pos.len(), charge.len(), "positions and charges must pair up");
        assert!(bucket >= 1);
        let n = pos.len();

        // Key + sort phase. (The paper implements the distributed version of
        // this as a weighted parallel sort; see `decomp`.)
        let mut keyed: Vec<(Key, u32)> = pos
            .iter()
            .enumerate()
            .map(|(i, &p)| (Key::from_point(p, &domain), i as u32))
            .collect();
        keyed.sort_unstable_by_key(|&(k, _)| k);

        let keys: Vec<Key> = keyed.iter().map(|&(k, _)| k).collect();
        let order: Vec<u32> = keyed.iter().map(|&(_, i)| i).collect();
        let spos: Vec<Vec3> = order.iter().map(|&i| pos[i as usize]).collect();
        let scharge: Vec<M::Charge> = order.iter().map(|&i| charge[i as usize]).collect();

        let mut tree = Tree {
            domain,
            bucket,
            keys,
            order,
            pos: spos,
            charge: scharge,
            cells: Vec::new(),
            table: KeyTable::with_capacity((2 * n / bucket.max(1)).max(64)),
        };
        tree.build_cells(0, n as u32);
        tree.compute_moments();
        tree
    }

    /// Carve cells out of the sorted particle array. `first..first+n` is the
    /// root span (all particles for a fresh build).
    fn build_cells(&mut self, first: u32, n: u32) {
        self.cells.push(Cell {
            key: Key::ROOT,
            first,
            n,
            first_child: NO_CHILD,
            nchild: 0,
            center: Vec3::ZERO,
            bmax: 0.0,
            wsum: 0.0,
            moments: M::default(),
        });
        self.table.insert(Key::ROOT, 0);

        let mut stack = vec![0u32];
        while let Some(ci) = stack.pop() {
            let (key, cfirst, cn) = {
                let c = &self.cells[ci as usize];
                (c.key, c.first, c.n)
            };
            if cn as usize <= self.bucket || key.level() >= MAX_DEPTH {
                continue;
            }
            // Partition the span by the next 3-bit digit. Keys are sorted,
            // so each child's particles are a contiguous subrange found by
            // binary search on the child's key interval.
            let span = &self.keys[cfirst as usize..(cfirst + cn) as usize];
            let first_child = self.cells.len() as u32;
            let mut nchild = 0u8;
            let mut child_indices = Vec::with_capacity(8);
            let mut lo = 0usize;
            for d in 0..8u8 {
                let child_key = key.child(d);
                let last = child_key.range_last();
                // End of this child's subrange: first key > range_last.
                let hi = lo + span[lo..].partition_point(|&k| k <= last);
                if hi > lo {
                    let idx = self.cells.len() as u32;
                    self.cells.push(Cell {
                        key: child_key,
                        first: cfirst + lo as u32,
                        n: (hi - lo) as u32,
                        first_child: NO_CHILD,
                        nchild: 0,
                        center: Vec3::ZERO,
                        bmax: 0.0,
                        wsum: 0.0,
                        moments: M::default(),
                    });
                    self.table.insert(child_key, idx);
                    child_indices.push(idx);
                    nchild += 1;
                }
                lo = hi;
            }
            debug_assert_eq!(lo, span.len(), "digit partition must cover the span");
            let c = &mut self.cells[ci as usize];
            c.first_child = first_child;
            c.nchild = nchild;
            // Descend into children that still exceed the bucket.
            stack.extend(child_indices);
        }
    }

    /// Bottom-up moments pass. Children always follow their parent in the
    /// `cells` vec, so a reverse sweep visits children first.
    fn compute_moments(&mut self) {
        for ci in (0..self.cells.len()).rev() {
            let cell = &self.cells[ci];
            let geom = cell.key.cell_aabb(&self.domain);
            if cell.is_leaf() {
                let span = cell.span();
                // Centroid.
                let mut wsum = 0.0;
                let mut centroid = Vec3::ZERO;
                for i in span.clone() {
                    let w = M::weight(&self.charge[i]);
                    wsum += w;
                    centroid += self.pos[i] * w;
                }
                let center = if wsum > 0.0 { centroid / wsum } else { geom.center() };
                // Expansion + bmax.
                let mut m = M::default();
                let mut bmax2 = 0.0f64;
                for i in span {
                    let one = M::from_particle(self.pos[i], &self.charge[i], center);
                    m.accumulate_shifted(&one, center, center);
                    bmax2 = bmax2.max((self.pos[i] - center).norm2());
                }
                let c = &mut self.cells[ci];
                c.center = center;
                c.wsum = wsum;
                c.moments = m;
                c.bmax = bmax2.sqrt();
            } else {
                let (first_child, nchild) = (self.cells[ci].first_child, self.cells[ci].nchild);
                let range = first_child as usize..(first_child as usize + nchild as usize);
                // Parent centroid from child centroids.
                let mut wsum = 0.0;
                let mut centroid = Vec3::ZERO;
                for k in range.clone() {
                    let ch = &self.cells[k];
                    wsum += ch.wsum;
                    centroid += ch.center * ch.wsum;
                }
                let center = if wsum > 0.0 { centroid / wsum } else { geom.center() };
                let mut m = M::default();
                let mut bmax = 0.0f64;
                for k in range {
                    let (cm, cc, cb) = {
                        let ch = &self.cells[k];
                        (ch.moments, ch.center, ch.bmax)
                    };
                    m.accumulate_shifted(&cm, cc, center);
                    bmax = bmax.max((cc - center).norm() + cb);
                }
                // The geometric corner distance is an alternative bound;
                // keep the tighter one.
                let corner = {
                    let dmin = (center - geom.min).abs();
                    let dmax = (geom.max - center).abs();
                    dmin.max(dmax).norm()
                };
                let c = &mut self.cells[ci];
                c.center = center;
                c.wsum = wsum;
                c.moments = m;
                c.bmax = bmax.min(corner);
            }
        }
    }

    /// Number of particles.
    pub fn n_particles(&self) -> usize {
        self.pos.len()
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// Record this tree's construction into a trace ledger (cells built
    /// plus the key-table probes spent building). Call right after
    /// [`Tree::build`], inside a `TreeBuild` span; both quantities are
    /// pure functions of the input bodies, so they are safe for the
    /// bitwise-deterministic report.
    pub fn record_build(&self, trace: &mut hot_trace::Ledger) {
        trace.add(hot_trace::Counter::CellsBuilt, self.n_cells() as u64);
        trace.add(hot_trace::Counter::HashProbes, self.table.probes());
    }

    /// The root cell.
    pub fn root(&self) -> &Cell<M> {
        &self.cells[0]
    }

    /// Look a cell up by key.
    pub fn cell_by_key(&self, key: Key) -> Option<&Cell<M>> {
        self.table.get(key).map(|i| &self.cells[i as usize])
    }

    /// Child cell indices of `cell`.
    pub fn children(&self, cell: &Cell<M>) -> std::ops::Range<usize> {
        if cell.is_leaf() {
            0..0
        } else {
            cell.first_child as usize..cell.first_child as usize + cell.nchild as usize
        }
    }

    /// Indices of the "sink group" cells: the shallowest cells holding at
    /// most `max_group` particles. They partition the particle set and are
    /// the units the traversal walks for (the paper traverses per group of
    /// sinks to amortize list construction).
    pub fn groups(&self, max_group: usize) -> Vec<u32> {
        let mut out = Vec::new();
        if self.n_particles() == 0 {
            return out;
        }
        let mut stack = vec![0u32];
        while let Some(ci) = stack.pop() {
            let c = &self.cells[ci as usize];
            if c.n as usize <= max_group || c.is_leaf() {
                if c.n > 0 {
                    out.push(ci);
                }
            } else {
                stack.extend(self.children(c).map(|k| k as u32));
            }
        }
        out
    }

    /// Exhaustive structural validation (test support): spans tile parents,
    /// keys match spans, table agrees, weights conserve.
    pub fn validate(&self) {
        assert!(!self.cells.is_empty());
        let root = &self.cells[0];
        assert_eq!(root.key, Key::ROOT);
        assert_eq!(root.n as usize, self.n_particles());
        for (ci, c) in self.cells.iter().enumerate() {
            assert_eq!(
                self.table.get(c.key),
                Some(ci as u32),
                "table lookup must find cell {ci}"
            );
            // Every particle in the span belongs to the cell's key range.
            for i in c.span() {
                assert!(
                    c.key.is_ancestor_of(self.keys[i]),
                    "particle {i} outside cell {:?}",
                    c.key
                );
            }
            if !c.is_leaf() {
                let kids = self.children(c);
                let mut covered = 0;
                let mut expect_first = c.first;
                for k in kids {
                    let ch = &self.cells[k];
                    assert_eq!(ch.key.parent(), c.key);
                    assert_eq!(ch.first, expect_first, "children must tile the span");
                    expect_first += ch.n;
                    covered += ch.n;
                    assert!(ch.n > 0, "empty child stored");
                }
                assert_eq!(covered, c.n, "children must cover the parent");
            } else {
                assert!(
                    c.n as usize <= self.bucket || c.key.level() == MAX_DEPTH,
                    "oversized leaf at level {}",
                    c.key.level()
                );
            }
            // bmax really bounds the contents.
            for i in c.span() {
                let d = (self.pos[i] - c.center).norm();
                assert!(
                    d <= c.bmax * (1.0 + 1e-12) + 1e-300,
                    "bmax violated: {d} > {}",
                    c.bmax
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::MassMoments;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen())).collect()
    }

    fn unit_masses(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    #[test]
    fn builds_and_validates_uniform() {
        let pos = random_points(2000, 1);
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &unit_masses(2000), 16);
        tree.validate();
        assert_eq!(tree.n_particles(), 2000);
        assert!(tree.n_cells() > 100);
        assert!((tree.root().moments.mass - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn single_particle_tree() {
        let pos = vec![Vec3::splat(0.25)];
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &[2.0], 8);
        tree.validate();
        assert_eq!(tree.n_cells(), 1);
        assert_eq!(tree.root().moments.mass, 2.0);
        assert_eq!(tree.root().center, Vec3::splat(0.25));
        assert_eq!(tree.root().bmax, 0.0);
    }

    #[test]
    fn empty_tree() {
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &[], &[], 8);
        assert_eq!(tree.n_cells(), 1);
        assert_eq!(tree.root().n, 0);
        assert!(tree.groups(10).is_empty());
    }

    #[test]
    fn coincident_particles_stop_at_max_depth() {
        // 20 particles at the same point can never split below bucket size;
        // the build must terminate at MAX_DEPTH with an oversized leaf.
        let pos = vec![Vec3::splat(0.3); 20];
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &unit_masses(20), 4);
        tree.validate();
        let deepest = tree.cells.iter().map(|c| c.key.level()).max().unwrap();
        assert_eq!(deepest, MAX_DEPTH);
    }

    #[test]
    fn root_com_matches_direct() {
        let pos = random_points(500, 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let masses: Vec<f64> = (0..500).map(|_| rng.gen_range(0.5..2.0)).collect();
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &masses, 12);
        let mtot: f64 = masses.iter().sum();
        let com = pos
            .iter()
            .zip(&masses)
            .map(|(&p, &m)| p * m)
            .fold(Vec3::ZERO, |a, b| a + b)
            / mtot;
        assert!((tree.root().moments.mass - mtot).abs() < 1e-9);
        assert!((tree.root().center - com).norm() < 1e-12);
        // Quadrupole about the com matches a direct computation.
        let mut q = hot_base::SymMat3::ZERO;
        for (&p, &m) in pos.iter().zip(&masses) {
            q += hot_base::SymMat3::outer(p - com) * m;
        }
        for i in 0..6 {
            assert!(
                (tree.root().moments.quad.m[i] - q.m[i]).abs() < 1e-9,
                "component {i}"
            );
        }
    }

    #[test]
    fn groups_partition_particles() {
        let pos = random_points(3000, 3);
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &unit_masses(3000), 8);
        let groups = tree.groups(32);
        let mut seen = vec![false; 3000];
        for &g in &groups {
            let c = &tree.cells[g as usize];
            assert!(c.n <= 32 || c.is_leaf());
            for i in c.span() {
                assert!(!seen[i], "particle {i} in two groups");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "groups must cover all particles");
    }

    #[test]
    fn clustered_distribution_builds_deep() {
        // A tight Gaussian clump forces deep refinement locally while the
        // rest of the box stays shallow — the adaptivity the paper's
        // clustered cosmology problems rely on.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut pos = Vec::new();
        for _ in 0..1500 {
            pos.push(Vec3::new(
                0.5 + rng.gen::<f64>() * 1e-4,
                0.5 + rng.gen::<f64>() * 1e-4,
                0.5 + rng.gen::<f64>() * 1e-4,
            ));
        }
        for _ in 0..500 {
            pos.push(Vec3::new(rng.gen(), rng.gen(), rng.gen()));
        }
        let n = pos.len();
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &unit_masses(n), 8);
        tree.validate();
        let deepest = tree.cells.iter().map(|c| c.key.level()).max().unwrap();
        assert!(deepest >= 10, "clump must force deep cells, got {deepest}");
    }

    #[test]
    fn order_is_permutation() {
        let pos = random_points(777, 9);
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &unit_masses(777), 16);
        let mut seen = vec![false; 777];
        for &o in &tree.order {
            assert!(!seen[o as usize]);
            seen[o as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Sorted keys really are sorted.
        assert!(tree.keys.windows(2).all(|w| w[0] <= w[1]));
        // pos[i] corresponds to original pos[order[i]].
        for i in 0..777 {
            assert_eq!(tree.pos[i], pos[tree.order[i] as usize]);
        }
    }

    #[test]
    fn negative_domain_coordinates() {
        let domain = Aabb::cube(Vec3::new(-5.0, 3.0, 100.0), 10.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let pos: Vec<Vec3> = (0..300)
            .map(|_| {
                domain.min
                    + Vec3::new(
                        rng.gen::<f64>() * 20.0,
                        rng.gen::<f64>() * 20.0,
                        rng.gen::<f64>() * 20.0,
                    )
            })
            .collect();
        let tree = Tree::<MassMoments>::build(domain, &pos, &unit_masses(300), 8);
        tree.validate();
    }
}
