//! The distributed tree: local trees grafted into a global view.
//!
//! After the domain decomposition each rank owns a contiguous Morton-key
//! interval and has built a local [`Tree`] over its bodies. To traverse
//! *globally*, every rank needs (at least) a coarse picture of everyone
//! else's matter. The paper's construction, reproduced here:
//!
//! * **Branch cells** — the coarsest local cells whose key ranges lie
//!   entirely inside the owner's interval. They are complete (no other rank
//!   holds matter in them) and collectively tile the occupied key space.
//! * Branches are all-gathered; each rank builds the **top tree** of their
//!   common ancestors, with exact merged moments (so the top-tree root
//!   carries the total system mass).
//! * Cells *below* another rank's branch are fetched lazily during the
//!   walk, through the global key name space: "request the children of key
//!   K" is meaningful on every rank — that is what the hash-table
//!   indirection buys.

use crate::decomp::KeyIntervals;
use crate::moments::Moments;
use crate::tree::Tree;
use crate::wirevec::{get_vec3, put_vec3};
use crate::KeyTable;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hot_base::Vec3;
use hot_comm::{Comm, Wire};
use hot_morton::Key;

/// Wire record describing one tree cell (branch exchange and child fetch).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellRecord<M> {
    /// Cell key.
    pub key: Key,
    /// Owning rank.
    pub owner: u32,
    /// Particles contained.
    pub n: u64,
    /// Expansion center.
    pub center: Vec3,
    /// Matter radius bound.
    pub bmax: f64,
    /// Total absolute charge (centroid weight).
    pub wsum: f64,
    /// Multipole expansion.
    pub moments: M,
    /// True when the cell has no children.
    pub is_leaf: bool,
}

impl<M: Wire + Copy> Wire for CellRecord<M> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.key.0);
        buf.put_u32_le(self.owner);
        buf.put_u64_le(self.n);
        put_vec3(buf, self.center);
        buf.put_f64_le(self.bmax);
        buf.put_f64_le(self.wsum);
        self.moments.encode(buf);
        buf.put_u8(self.is_leaf as u8);
    }
    fn decode(buf: &mut Bytes) -> Self {
        let key = Key(buf.get_u64_le());
        let owner = buf.get_u32_le();
        let n = buf.get_u64_le();
        let center = get_vec3(buf);
        let bmax = buf.get_f64_le();
        let wsum = buf.get_f64_le();
        let moments = M::decode(buf);
        let is_leaf = buf.get_u8() != 0;
        CellRecord { key, owner, n, center, bmax, wsum, moments, is_leaf }
    }
    fn wire_size(&self) -> usize {
        8 + 4 + 8 + 24 + 8 + 8 + self.moments.wire_size() + 1
    }
}

/// How a distributed node's children are reached.
#[derive(Clone, Debug, PartialEq)]
pub enum DChildren {
    /// Fully-resolved children, indices into `DistTree::nodes`.
    Nodes(Vec<u32>),
    /// This is one of *my* branches: descend via the local tree.
    LocalSubtree,
    /// Remote internal cell whose children have not been fetched yet.
    RemoteUnfetched,
    /// Remote leaf cell: no children; its bodies can be fetched.
    RemoteLeaf,
}

/// One node of the global tree view.
#[derive(Clone, Debug)]
pub struct DNode<M> {
    /// Cell key.
    pub key: Key,
    /// Owning rank (`u32::MAX` for shared top-tree nodes).
    pub owner: u32,
    /// Particles contained.
    pub n: u64,
    /// Expansion center.
    pub center: Vec3,
    /// Matter radius bound.
    pub bmax: f64,
    /// Centroid weight.
    pub wsum: f64,
    /// Multipole expansion.
    pub moments: M,
    /// Child linkage.
    pub children: DChildren,
}

/// Owner tag for shared top-tree nodes.
pub const SHARED: u32 = u32::MAX;

/// Previous step's branch exchange, kept between steps so
/// [`DistTree::build_cached_traced`] can skip the allgather on
/// inactive-majority steps (nothing crossed a branch boundary anywhere).
#[derive(Clone, Debug)]
pub struct BranchCache<M> {
    /// This rank's branch records from the last exchange.
    pub mine: Vec<CellRecord<M>>,
    /// The full key-sorted gathered record set from the last exchange.
    pub records: Vec<CellRecord<M>>,
    /// Intervals the cached records were extracted under.
    pub intervals: Option<KeyIntervals>,
}

impl<M> Default for BranchCache<M> {
    fn default() -> Self {
        BranchCache { mine: Vec::new(), records: Vec::new(), intervals: None }
    }
}

/// The global tree view of one rank.
#[derive(Debug)]
pub struct DistTree<M: Moments> {
    /// This rank.
    pub rank: u32,
    /// The rank's local tree.
    pub local: Tree<M>,
    /// Global key ownership.
    pub intervals: KeyIntervals,
    /// Global nodes: top tree + branches + lazily fetched remote cells.
    pub nodes: Vec<DNode<M>>,
    /// Key → node index.
    pub table: KeyTable,
    /// Index of the global root in `nodes`.
    pub root: u32,
    /// Fetched remote bodies, keyed by node index.
    pub body_cache: std::collections::HashMap<u32, (Vec<Vec3>, Vec<M::Charge>)>,
}

impl<M: Moments> DistTree<M> {
    /// [`DistTree::build`], recording into the current trace span: the
    /// top-tree/branch nodes built and the branch-allgather traffic (a
    /// collective, hence schedule-independent and safe to trace from raw
    /// `TrafficStats`). Does not open a span of its own — callers wrap the
    /// whole tree phase (local build + exchange) in one `TreeBuild` span.
    pub fn build_traced(
        comm: &mut Comm,
        local: Tree<M>,
        intervals: KeyIntervals,
        trace: &mut hot_trace::Ledger,
    ) -> Self {
        let wire_before = comm.stats();
        let dt = Self::build(comm, local, intervals);
        trace.add(hot_trace::Counter::CellsBuilt, dt.nodes.len() as u64);
        trace.add_traffic(&comm.stats().since(&wire_before));
        dt
    }

    /// Exchange branch cells and build the shared top tree.
    /// Collective: every rank calls with its local tree and the (identical)
    /// intervals from [`crate::decomp::decompose`].
    pub fn build(comm: &mut Comm, local: Tree<M>, intervals: KeyIntervals) -> Self {
        let rank = comm.rank();
        let my_branches = branch_records(&local, &intervals, rank);
        let all: Vec<Vec<CellRecord<M>>> = comm.allgather(my_branches);
        let mut records: Vec<CellRecord<M>> = all.into_iter().flatten().collect();
        records.sort_unstable_by_key(|r| r.key);
        Self::assemble(rank, local, intervals, &records)
    }

    /// [`DistTree::build`] with the previous step's branch exchange cached:
    /// when *every* rank's branch records (and the intervals) are unchanged
    /// — decided by a cheap `allreduce` — the branch allgather is skipped
    /// and the top tree is re-assembled from the cached records. The
    /// resulting node set is bitwise identical either way (assembly is a
    /// pure function of the sorted record set); only the traffic pattern
    /// differs, which is why the adaptive decomposition policy opts in and
    /// `Static` never takes this path.
    ///
    /// Returns the tree plus whether the allgather was skipped.
    pub fn build_cached_traced(
        comm: &mut Comm,
        local: Tree<M>,
        intervals: KeyIntervals,
        cache: &mut BranchCache<M>,
        trace: &mut hot_trace::Ledger,
    ) -> (Self, bool)
    where
        M: PartialEq,
    {
        let wire_before = comm.stats();
        let rank = comm.rank();
        let my_branches = branch_records(&local, &intervals, rank);
        let unchanged = cache.intervals.as_ref() == Some(&intervals)
            && my_branches == cache.mine;
        let np = comm.size() as u64;
        let all_unchanged = comm.allreduce_sum_u64(u64::from(unchanged)) == np;
        let dt = if all_unchanged {
            Self::assemble(rank, local, intervals, &cache.records)
        } else {
            let all: Vec<Vec<CellRecord<M>>> = comm.allgather(my_branches.clone());
            let mut records: Vec<CellRecord<M>> = all.into_iter().flatten().collect();
            records.sort_unstable_by_key(|r| r.key);
            let dt = Self::assemble(rank, local, intervals, &records);
            cache.mine = my_branches;
            cache.records = records;
            cache.intervals = Some(dt.intervals.clone());
            dt
        };
        trace.add(hot_trace::Counter::CellsBuilt, dt.nodes.len() as u64);
        trace.add_traffic(&comm.stats().since(&wire_before));
        (dt, all_unchanged)
    }

    /// Build the top tree from an already-gathered, key-sorted record set.
    /// Pure local computation — every rank holding the same records builds
    /// the same nodes.
    fn assemble(
        rank: u32,
        local: Tree<M>,
        intervals: KeyIntervals,
        records: &[CellRecord<M>],
    ) -> Self {
        let mut dt = DistTree {
            rank,
            local,
            intervals,
            nodes: Vec::new(),
            table: KeyTable::with_capacity(records.len() * 3 + 16),
            root: 0,
            body_cache: std::collections::HashMap::new(),
        };

        if records.is_empty() {
            // Empty universe: a lone empty root.
            dt.root = dt.push_node(DNode {
                key: Key::ROOT,
                owner: SHARED,
                n: 0,
                center: dt.local.domain.center(),
                bmax: 0.0,
                wsum: 0.0,
                moments: M::default(),
                children: DChildren::Nodes(Vec::new()),
            });
            return dt;
        }

        // Insert branch nodes.
        let mut frontier: Vec<u32> = Vec::with_capacity(records.len());
        for r in records {
            let children = if r.owner == rank {
                DChildren::LocalSubtree
            } else if r.is_leaf {
                DChildren::RemoteLeaf
            } else {
                DChildren::RemoteUnfetched
            };
            let idx = dt.push_node(DNode {
                key: r.key,
                owner: r.owner,
                n: r.n,
                center: r.center,
                bmax: r.bmax,
                wsum: r.wsum,
                moments: r.moments,
                children,
            });
            frontier.push(idx);
        }

        // Build ancestors level by level until only the root remains.
        while !(frontier.len() == 1 && dt.nodes[frontier[0] as usize].key == Key::ROOT) {
            // Group the (key-sorted) frontier by parent key.
            let mut next: Vec<u32> = Vec::new();
            let mut i = 0;
            while i < frontier.len() {
                let parent_key = parent_or_self(dt.nodes[frontier[i] as usize].key);
                let mut kids: Vec<u32> = Vec::new();
                while i < frontier.len()
                    && parent_or_self(dt.nodes[frontier[i] as usize].key) == parent_key
                {
                    kids.push(frontier[i]);
                    i += 1;
                }
                // A frontier node that *is* already at the parent level
                // (can only be the root case) passes through.
                if kids.len() == 1 && dt.nodes[kids[0] as usize].key == parent_key {
                    next.push(kids[0]);
                    continue;
                }
                let idx = dt.make_parent(parent_key, &kids);
                next.push(idx);
            }
            frontier = next;
        }
        dt.root = frontier[0];
        dt
    }

    fn push_node(&mut self, node: DNode<M>) -> u32 {
        let idx = self.nodes.len() as u32;
        self.table.insert(node.key, idx);
        self.nodes.push(node);
        idx
    }

    fn make_parent(&mut self, key: Key, kids: &[u32]) -> u32 {
        let geom = key.cell_aabb(&self.local.domain);
        let mut wsum = 0.0;
        let mut centroid = Vec3::ZERO;
        let mut n = 0u64;
        for &k in kids {
            let c = &self.nodes[k as usize];
            wsum += c.wsum;
            centroid += c.center * c.wsum;
            n += c.n;
        }
        let center = if wsum > 0.0 { centroid / wsum } else { geom.center() };
        let mut moments = M::default();
        let mut bmax = 0.0f64;
        for &k in kids {
            let (cm, cc, cb) = {
                let c = &self.nodes[k as usize];
                (c.moments, c.center, c.bmax)
            };
            moments.accumulate_shifted(&cm, cc, center);
            bmax = bmax.max((cc - center).norm() + cb);
        }
        let corner = {
            let dmin = (center - geom.min).abs();
            let dmax = (geom.max - center).abs();
            dmin.max(dmax).norm()
        };
        self.push_node(DNode {
            key,
            owner: SHARED,
            n,
            center,
            bmax: bmax.min(corner),
            wsum,
            moments,
            children: DChildren::Nodes(kids.to_vec()),
        })
    }

    /// Child records of one of *my* local cells, for serving a remote
    /// rank's fetch request. Returns `None` when the key is not resident
    /// locally (a protocol error by the requester).
    pub fn children_records(&self, key: Key) -> Option<Vec<CellRecord<M>>> {
        let ci = self.local.table.get(key)?;
        let cell = &self.local.cells[ci as usize];
        let mut out = Vec::with_capacity(cell.nchild as usize);
        for k in self.local.children(cell) {
            let ch = &self.local.cells[k];
            out.push(CellRecord {
                key: ch.key,
                owner: self.rank,
                n: ch.n as u64,
                center: ch.center,
                bmax: ch.bmax,
                wsum: ch.wsum,
                moments: ch.moments,
                is_leaf: ch.is_leaf(),
            });
        }
        Some(out)
    }

    /// The local tree-order span of a key's range, by binary search on the
    /// sorted key array — answers "virtual" keys that have no resident
    /// cell too.
    pub fn span_of(&self, key: Key) -> std::ops::Range<usize> {
        let begin = key.range_begin();
        let last = key.range_last();
        let i0 = self.local.keys.partition_point(|&k| k < begin);
        let i1 = i0 + self.local.keys[i0..].partition_point(|&k| k <= last);
        i0..i1
    }

    /// Bodies within a key's range, for serving a remote direct-sum
    /// request.
    pub fn bodies_of(&self, key: Key) -> Option<(Vec<Vec3>, Vec<M::Charge>)> {
        let span = self.span_of(key);
        if span.is_empty() {
            return None;
        }
        Some((self.local.pos[span.clone()].to_vec(), self.local.charge[span].to_vec()))
    }

    /// Install fetched children below node `parent_key`. Returns the new
    /// node indices (empty when already installed by an earlier reply).
    pub fn install_children(&mut self, parent_key: Key, records: &[CellRecord<M>]) -> Vec<u32> {
        let pidx = self
            .table
            .get(parent_key)
            // Protocol invariant: replies only arrive for requested parents.
            // hot-lint: allow(unwrap-audit)
            .expect("install_children: unknown parent") as usize;
        if let DChildren::Nodes(_) = self.nodes[pidx].children {
            return Vec::new();
        }
        let mut idxs = Vec::with_capacity(records.len());
        for r in records {
            let children = if r.is_leaf { DChildren::RemoteLeaf } else { DChildren::RemoteUnfetched };
            let idx = self.push_node(DNode {
                key: r.key,
                owner: r.owner,
                n: r.n,
                center: r.center,
                bmax: r.bmax,
                wsum: r.wsum,
                moments: r.moments,
                children,
            });
            idxs.push(idx);
        }
        self.nodes[pidx].children = DChildren::Nodes(idxs.clone());
        idxs
    }

    /// Total particles visible from the global root.
    pub fn global_n(&self) -> u64 {
        self.nodes[self.root as usize].n
    }
}

fn parent_or_self(key: Key) -> Key {
    if key == Key::ROOT {
        key
    } else {
        key.parent()
    }
}

/// Extract this rank's branch cells: the coarsest cells (by key range)
/// fully inside the rank's interval.
///
/// Works on key *ranges* over the sorted particle array rather than on the
/// built cells, because a local leaf may straddle an interval boundary: the
/// leaf then splits into "virtual" branch cells that exist in key space but
/// not in the local cell store. The resulting branch set is an antichain
/// that tiles the occupied key space — the invariant the top tree needs.
fn branch_records<M: Moments>(
    local: &Tree<M>,
    intervals: &KeyIntervals,
    rank: u32,
) -> Vec<CellRecord<M>> {
    let mut out = Vec::new();
    if local.n_particles() == 0 {
        return out;
    }
    let (lo, hi) = intervals.interval(rank);
    let last_rank = rank as usize == intervals.np() - 1;
    // (key, span) work stack over the sorted key array.
    let mut stack: Vec<(Key, usize, usize)> = vec![(Key::ROOT, 0, local.n_particles())];
    while let Some((key, i0, i1)) = stack.pop() {
        if i0 == i1 {
            continue;
        }
        let begin = key.range_begin().0;
        let last = key.range_last().0;
        let inside = begin >= lo && (last < hi || (last_rank && last <= hi));
        if inside {
            out.push(record_for_span(local, key, i0, i1, rank));
            continue;
        }
        debug_assert!(
            key.level() < hot_morton::MAX_DEPTH,
            "a max-depth cell is a single key and is owned whole"
        );
        // Split by the next digit (binary search within the span).
        let mut lo_i = i0;
        for d in 0..8u8 {
            let child = key.child(d);
            let child_last = child.range_last();
            let hi_i = lo_i
                + local.keys[lo_i..i1].partition_point(|&k| k <= child_last);
            if hi_i > lo_i {
                stack.push((child, lo_i, hi_i));
            }
            lo_i = hi_i;
        }
        debug_assert_eq!(lo_i, i1);
    }
    out
}

/// Build a cell record for a key + particle span, preferring the resident
/// cell when one exists and synthesizing moments from particles otherwise
/// (the "virtual branch" case).
fn record_for_span<M: Moments>(
    local: &Tree<M>,
    key: Key,
    i0: usize,
    i1: usize,
    rank: u32,
) -> CellRecord<M> {
    if let Some(ci) = local.table.get(key) {
        let c = &local.cells[ci as usize];
        debug_assert_eq!(c.span(), i0..i1);
        return CellRecord {
            key,
            owner: rank,
            n: c.n as u64,
            center: c.center,
            bmax: c.bmax,
            wsum: c.wsum,
            moments: c.moments,
            is_leaf: c.is_leaf(),
        };
    }
    // Virtual cell: compute expansion directly from the span.
    let mut wsum = 0.0;
    let mut centroid = Vec3::ZERO;
    for i in i0..i1 {
        let w = M::weight(&local.charge[i]);
        wsum += w;
        centroid += local.pos[i] * w;
    }
    let center = if wsum > 0.0 { centroid / wsum } else { key.cell_center(&local.domain) };
    let mut moments = M::default();
    let mut bmax2 = 0.0f64;
    for i in i0..i1 {
        let one = M::from_particle(local.pos[i], &local.charge[i], center);
        moments.accumulate_shifted(&one, center, center);
        bmax2 = bmax2.max((local.pos[i] - center).norm2());
    }
    CellRecord {
        key,
        owner: rank,
        n: (i1 - i0) as u64,
        center,
        bmax: bmax2.sqrt(),
        wsum,
        moments,
        is_leaf: true,
    }
}

#[cfg(test)]
mod tests {
    use hot_comm::RunConfig;
    use super::*;
    use crate::decomp::{decompose, Body};
    use crate::moments::MassMoments;
    use hot_base::Aabb;
    use rand::{Rng, SeedableRng};

    fn build_dist(np: u32, n_per_rank: usize, seed: u64) -> Vec<DistInfo> {
        let out = RunConfig::builder().np(np).run(move |c| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + c.rank() as u64);
            let bodies: Vec<Body<f64>> = (0..n_per_rank)
                .map(|i| {
                    let pos = Vec3::new(rng.gen(), rng.gen(), rng.gen());
                    Body {
                        key: Key::from_point(pos, &Aabb::unit()),
                        pos,
                        charge: 1.0 + (i % 3) as f64 * 0.5,
                        work: 1.0,
                        id: c.rank() as u64 * 1_000_000 + i as u64,
                    }
                })
                .collect();
            let (mine, iv) = decompose(c, bodies, 32);
            let pos: Vec<Vec3> = mine.iter().map(|b| b.pos).collect();
            let q: Vec<f64> = mine.iter().map(|b| b.charge).collect();
            let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &q, 8);
            tree.validate();
            let dt = DistTree::build(c, tree, iv);
            DistInfo {
                global_n: dt.global_n(),
                root_mass: dt.nodes[dt.root as usize].moments.mass,
                local_mass: dt.local.root().moments.mass,
                n_nodes: dt.nodes.len(),
                branches_disjoint: check_branch_antichain(&dt),
            }
        });
        out.results
    }

    struct DistInfo {
        global_n: u64,
        root_mass: f64,
        local_mass: f64,
        n_nodes: usize,
        branches_disjoint: bool,
    }

    fn check_branch_antichain<M: Moments>(dt: &DistTree<M>) -> bool {
        // Collect the branch keys (nodes that are LocalSubtree / Remote*).
        let branch_keys: Vec<Key> = dt
            .nodes
            .iter()
            .filter(|n| {
                matches!(
                    n.children,
                    DChildren::LocalSubtree | DChildren::RemoteLeaf | DChildren::RemoteUnfetched
                )
            })
            .map(|n| n.key)
            .collect();
        for (i, &a) in branch_keys.iter().enumerate() {
            for &b in &branch_keys[i + 1..] {
                if a.is_ancestor_of(b) || b.is_ancestor_of(a) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn global_mass_and_count_on_every_rank() {
        for np in [1u32, 2, 4, 6] {
            let n_per = 400;
            let infos = build_dist(np, n_per, 17);
            let total_local_mass: f64 = infos.iter().map(|i| i.local_mass).sum();
            for info in &infos {
                assert_eq!(info.global_n, (np as usize * n_per) as u64, "np={np}");
                assert!(
                    (info.root_mass - total_local_mass).abs() < 1e-9 * total_local_mass,
                    "np={np}: root mass {} vs {}",
                    info.root_mass,
                    total_local_mass
                );
                assert!(info.branches_disjoint, "np={np}: branches overlap");
                assert!(info.n_nodes >= np as usize, "np={np}");
            }
        }
    }

    #[test]
    fn cached_build_skips_allgather_when_unchanged() {
        let out = RunConfig::builder().np(3).run(|c| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(41 + c.rank() as u64);
            let bodies: Vec<Body<f64>> = (0..250)
                .map(|i| {
                    let pos = Vec3::new(rng.gen(), rng.gen(), rng.gen());
                    Body {
                        key: Key::from_point(pos, &Aabb::unit()),
                        pos,
                        charge: 1.0,
                        work: 1.0,
                        id: c.rank() as u64 * 1_000_000 + i,
                    }
                })
                .collect();
            let (mine, iv) = decompose(c, bodies, 32);
            let pos: Vec<Vec3> = mine.iter().map(|b| b.pos).collect();
            let q: Vec<f64> = mine.iter().map(|b| b.charge).collect();
            let build_tree = || Tree::<MassMoments>::build(Aabb::unit(), &pos, &q, 8);

            let mut cache = BranchCache::default();
            let mut trace = hot_trace::Ledger::scratch();
            let (dt1, skipped1) = DistTree::build_cached_traced(
                c,
                build_tree(),
                iv.clone(),
                &mut cache,
                &mut trace,
            );
            assert!(!skipped1, "cold cache must allgather");
            let sent_after_first = c.stats().bytes_sent;
            let (dt2, skipped2) = DistTree::build_cached_traced(
                c,
                build_tree(),
                iv.clone(),
                &mut cache,
                &mut trace,
            );
            assert!(skipped2, "unchanged branches must skip the allgather");
            let sent_after_second = c.stats().bytes_sent;
            // Node sets must be identical across the two paths.
            assert_eq!(dt1.nodes.len(), dt2.nodes.len());
            for (a, b) in dt1.nodes.iter().zip(&dt2.nodes) {
                assert_eq!(a.key, b.key);
                assert_eq!(a.owner, b.owner);
                assert_eq!(a.n, b.n);
                assert_eq!(a.wsum.to_bits(), b.wsum.to_bits());
                assert_eq!(a.moments.mass.to_bits(), b.moments.mass.to_bits());
            }
            // A reference build for traffic comparison: the cached rebuild
            // must move less data than a full exchange.
            let full = DistTree::build(c, build_tree(), iv.clone());
            let sent_after_full = c.stats().bytes_sent;
            assert_eq!(full.nodes.len(), dt2.nodes.len());
            let cached_bytes = sent_after_second - sent_after_first;
            let full_bytes = sent_after_full - sent_after_second;
            assert!(
                cached_bytes < full_bytes,
                "cached rebuild must be cheaper: {cached_bytes} vs {full_bytes}"
            );
            1u8
        });
        assert_eq!(out.results.len(), 3);
    }

    #[test]
    fn record_wire_roundtrip() {
        let rec = CellRecord::<MassMoments> {
            key: Key::ROOT.child(3).child(5),
            owner: 2,
            n: 17,
            center: Vec3::new(0.1, 0.2, 0.3),
            bmax: 0.05,
            wsum: 17.0,
            moments: MassMoments { mass: 17.0, quad: hot_base::SymMat3::IDENTITY, b2: 3.0 },
            is_leaf: true,
        };
        let back: CellRecord<MassMoments> = hot_comm::from_bytes(hot_comm::to_bytes(&rec));
        assert_eq!(back, rec);
    }

    #[test]
    fn empty_universe() {
        let out = RunConfig::builder().np(2).run(|c| {
            let (mine, iv) = decompose::<f64>(c, Vec::new(), 16);
            let pos: Vec<Vec3> = mine.iter().map(|b| b.pos).collect();
            let q: Vec<f64> = mine.iter().map(|b| b.charge).collect();
            let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &q, 8);
            let dt = DistTree::build(c, tree, iv);
            (dt.global_n(), dt.nodes.len())
        });
        for &(n, nodes) in &out.results {
            assert_eq!(n, 0);
            assert_eq!(nodes, 1);
        }
    }

    #[test]
    fn serving_children_and_bodies() {
        let out = RunConfig::builder().np(2).run(|c| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(c.rank() as u64);
            let bodies: Vec<Body<f64>> = (0..300)
                .map(|i| {
                    let pos = Vec3::new(rng.gen(), rng.gen(), rng.gen());
                    Body {
                        key: Key::from_point(pos, &Aabb::unit()),
                        pos,
                        charge: 1.0,
                        work: 1.0,
                        id: i,
                    }
                })
                .collect();
            let (mine, iv) = decompose(c, bodies, 32);
            let pos: Vec<Vec3> = mine.iter().map(|b| b.pos).collect();
            let q: Vec<f64> = mine.iter().map(|b| b.charge).collect();
            let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &q, 8);
            let dt = DistTree::build(c, tree, iv);
            // Every local cell can be served.
            let root_children = dt.children_records(Key::ROOT).expect("root is local");
            let n_from_children: u64 = root_children.iter().map(|r| r.n).sum();
            assert_eq!(n_from_children, dt.local.n_particles() as u64);
            // Bodies of the first leaf.
            let leaf = dt.local.cells.iter().find(|c| c.is_leaf() && c.n > 0).expect("a leaf");
            let (bp, bq) = dt.bodies_of(leaf.key).expect("leaf resident");
            assert_eq!(bp.len(), leaf.n as usize);
            assert_eq!(bq.len(), leaf.n as usize);
            // Exercise the deep-key lookup path; the key may or may not be
            // resident, so only the call itself is under test.
            let _ = dt.children_records(Key::ROOT.child(0).child(0).child(0).child(0));
            1u8
        });
        assert_eq!(out.results.len(), 2);
    }

    #[test]
    fn install_children_links_nodes() {
        // Single-rank scenario faking a remote install.
        let out = RunConfig::builder().np(1).run(|c| {
            let pos: Vec<Vec3> = (0..50)
                .map(|i| Vec3::new((i as f64 + 0.5) / 50.0, 0.5, 0.5))
                .collect();
            let q = vec![1.0; 50];
            let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &q, 4);
            let (_, iv) = decompose::<f64>(c, Vec::new(), 8);
            let mut dt = DistTree::build(c, tree, iv);
            // Fabricate a remote node and install children beneath it.
            let fake_key = Key::ROOT.child(7).child(7).child(7);
            let fake = CellRecord {
                key: fake_key,
                owner: 0,
                n: 5,
                center: Vec3::splat(0.9),
                bmax: 0.01,
                wsum: 5.0,
                moments: MassMoments { mass: 5.0, ..Default::default() },
                is_leaf: false,
            };
            let parent_idx = dt.push_node(DNode {
                key: fake.key,
                owner: 0,
                n: 5,
                center: fake.center,
                bmax: fake.bmax,
                wsum: 5.0,
                moments: fake.moments,
                children: DChildren::RemoteUnfetched,
            });
            let kid = CellRecord { key: fake_key.child(1), is_leaf: true, n: 5, ..fake };
            let idxs = dt.install_children(fake_key, &[kid]);
            assert_eq!(idxs.len(), 1);
            assert_eq!(dt.nodes[idxs[0] as usize].key, fake_key.child(1));
            assert!(matches!(dt.nodes[parent_idx as usize].children, DChildren::Nodes(_)));
            // Second install is a no-op.
            assert!(dt.install_children(fake_key, &[kid]).is_empty());
            true
        });
        assert!(out.results[0]);
    }
}
