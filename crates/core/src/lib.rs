//! # hot-core — the Hashed Oct-Tree (HOT) library
//!
//! Reproduction of the parallel treecode library of Warren & Salmon
//! (SC'93 "A parallel hashed oct-tree N-body algorithm", and the SC'97
//! Gordon Bell paper this repository regenerates). The library is
//! physics-agnostic; gravity, vortex dynamics and SPH plug in through the
//! [`Moments`](moments::Moments) and [`Evaluator`](walk::Evaluator) traits.
//!
//! Pipeline (per timestep, matching the paper's description):
//!
//! 1. **Keys** — particles get Morton keys ([`hot_morton`]).
//! 2. **Domain decomposition** ([`decomp`]) — a work-weighted parallel
//!    sample sort splits the key line into one contiguous interval per
//!    processor.
//! 3. **Tree build** ([`tree`]) — each rank builds its local hashed
//!    oct-tree; [`dtree`] exchanges *branch* cells and grafts every rank's
//!    canopy into a globally consistent top tree.
//! 4. **Traversal** ([`walk`] serially, [`dwalk`] distributed) — per
//!    sink-group walks with a multipole acceptance criterion ([`mac`]);
//!    non-local cells are fetched on demand over the ABM active-message
//!    layer with the paper's "explicit context switching" to hide latency.
//!
//! The [`htable::KeyTable`] provides the key → cell indirection that gives
//! the method its name.

#![warn(missing_docs)]

pub mod decomp;
pub mod dtree;
pub mod dwalk;
pub mod htable;
pub mod ilist;
pub mod mac;
pub mod moments;
#[cfg(test)]
mod proptests;
pub mod tree;
pub mod walk;
pub mod wirevec;

pub use htable::KeyTable;
pub use ilist::{InteractionList, ListConsumer};
pub use mac::Mac;
pub use moments::{MassMoments, Moments, MonoMoments, VectorMoments};
pub use tree::{Cell, Tree, NO_CHILD};
pub use walk::{walk, walk_group, walk_lists, Evaluator, WalkStats};
