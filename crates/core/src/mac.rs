//! Multipole acceptance criteria (MAC).
//!
//! *"Effectively managing the errors introduced by this approximation is the
//! subject of an entire paper of ours"* — Salmon & Warren, "Skeletons from
//! the treecode closet" (JCP 111:136, 1994). Two criteria are provided:
//!
//! * [`Mac::BarnesHut`] — the classic geometric opening angle: accept a cell
//!   when its size-to-distance ratio is below θ.
//! * [`Mac::SalmonWarren`] — an absolute per-interaction acceleration error
//!   bound built from the cell's tracked second absolute moment `B₂`,
//!   the criterion family the paper's production runs used (they quote an
//!   *RMS force accuracy better than 10⁻³*).
//!
//! Both are evaluated against a *sink group* (center + radius), because the
//! traversal amortizes one walk over a bucket of nearby sinks.

use crate::moments::Moments;
use crate::tree::Cell;
use hot_base::Vec3;

/// A multipole acceptance criterion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mac {
    /// Accept when `bmax / d < θ`, with `d` the distance from the cell's
    /// expansion center to the nearest point of the sink group.
    BarnesHut {
        /// Opening angle, typically 0.5–1.0. Smaller is more accurate.
        theta: f64,
    },
    /// Accept when a rigorous bound on the acceleration error of the
    /// truncated expansion falls below `delta` (code units: `G·m/L²`).
    SalmonWarren {
        /// Maximum tolerated per-interaction acceleration error.
        delta: f64,
    },
}

impl Mac {
    /// Decide whether `cell` may interact as a multipole with a sink group
    /// of radius `gradius` about `gcenter`.
    #[inline]
    pub fn accepts<M: Moments>(&self, cell: &Cell<M>, gcenter: Vec3, gradius: f64) -> bool {
        self.accepts_raw(cell.center, cell.bmax, cell.moments.b2(), gcenter, gradius)
    }

    /// The same decision from raw cell summaries — used for distributed
    /// nodes that are not local [`Cell`]s.
    #[inline]
    pub fn accepts_raw(
        &self,
        center: Vec3,
        bmax: f64,
        b2: f64,
        gcenter: Vec3,
        gradius: f64,
    ) -> bool {
        // Distance from expansion center to the nearest possible sink.
        let d = (center - gcenter).norm() - gradius;
        if d <= bmax {
            // Sinks may lie inside the cell's matter radius: never accept.
            return false;
        }
        match *self {
            Mac::BarnesHut { theta } => bmax < theta * d,
            Mac::SalmonWarren { delta } => {
                // Truncating after the quadrupole-free monopole (dipole
                // vanishes about the centroid) leaves an error dominated by
                // the second moment:  |δa| ≤ 3 B₂ / (d² (d − bmax)²).
                // (Salmon & Warren 1994, specialised to p = 1 with the
                // conservative (d − b) denominator.)
                let err = 3.0 * b2 / (d * d * (d - bmax) * (d - bmax));
                err < delta
            }
        }
    }

    /// A human-readable name for benchmark tables.
    pub fn name(&self) -> String {
        match self {
            Mac::BarnesHut { theta } => format!("BH(theta={theta})"),
            Mac::SalmonWarren { delta } => format!("SW(delta={delta:e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::MassMoments;
    use crate::tree::NO_CHILD;
    use hot_base::SymMat3;
    use hot_morton::Key;

    fn cell_at(center: Vec3, bmax: f64, mass: f64, b2: f64) -> Cell<MassMoments> {
        Cell {
            key: Key::ROOT,
            first: 0,
            n: 1,
            first_child: NO_CHILD,
            nchild: 0,
            center,
            bmax,
            wsum: mass,
            moments: MassMoments { mass, quad: SymMat3::ZERO, b2 },
        }
    }

    #[test]
    fn barnes_hut_accepts_far_rejects_near() {
        let mac = Mac::BarnesHut { theta: 0.7 };
        let cell = cell_at(Vec3::new(10.0, 0.0, 0.0), 1.0, 1.0, 1.0);
        // Sink at origin, radius 0: d = 10, bmax/d = 0.1 < 0.7 → accept.
        assert!(mac.accepts(&cell, Vec3::ZERO, 0.0));
        // Sink group reaching to within 1.1 of the cell: reject.
        assert!(!mac.accepts(&cell, Vec3::ZERO, 8.9));
        // Sink inside the cell radius: reject regardless of theta.
        let huge = Mac::BarnesHut { theta: 100.0 };
        assert!(!huge.accepts(&cell, Vec3::new(9.5, 0.0, 0.0), 0.0));
    }

    #[test]
    fn barnes_hut_theta_monotone() {
        let cell = cell_at(Vec3::new(3.0, 0.0, 0.0), 1.0, 1.0, 1.0);
        // bmax/d = 1/3: accepted by theta > 1/3 only.
        assert!(!Mac::BarnesHut { theta: 0.2 }.accepts(&cell, Vec3::ZERO, 0.0));
        assert!(Mac::BarnesHut { theta: 0.5 }.accepts(&cell, Vec3::ZERO, 0.0));
    }

    #[test]
    fn salmon_warren_tightens_with_delta() {
        let cell = cell_at(Vec3::new(5.0, 0.0, 0.0), 1.0, 10.0, 4.0);
        // err = 3*4 / (25 * 16) = 0.03
        assert!(Mac::SalmonWarren { delta: 0.05 }.accepts(&cell, Vec3::ZERO, 0.0));
        assert!(!Mac::SalmonWarren { delta: 0.01 }.accepts(&cell, Vec3::ZERO, 0.0));
    }

    #[test]
    fn salmon_warren_point_cell_always_accepted_outside() {
        // b2 = 0 (a point mass): any exterior sink accepts.
        let cell = cell_at(Vec3::new(1.0, 0.0, 0.0), 0.0, 5.0, 0.0);
        assert!(Mac::SalmonWarren { delta: 1e-12 }.accepts(&cell, Vec3::ZERO, 0.5));
    }

    #[test]
    fn group_radius_shrinks_effective_distance() {
        let mac = Mac::BarnesHut { theta: 0.5 };
        let cell = cell_at(Vec3::new(4.0, 0.0, 0.0), 1.0, 1.0, 1.0);
        assert!(mac.accepts(&cell, Vec3::ZERO, 0.0)); // d=4
        assert!(!mac.accepts(&cell, Vec3::ZERO, 2.5)); // d=1.5 → 1/1.5 > 0.5
    }

    #[test]
    fn names() {
        assert!(Mac::BarnesHut { theta: 0.8 }.name().contains("0.8"));
        assert!(Mac::SalmonWarren { delta: 1e-4 }.name().starts_with("SW"));
    }
}
