//! The hash table at the heart of the *hashed* oct-tree.
//!
//! From the paper: *"A hash table is used in order to translate the key into
//! a pointer to the location where the cell data are stored. This level of
//! indirection through a hash table can also be used to catch accesses to
//! non-local data, and allows us to request and receive data from other
//! processors using the global key name space."*
//!
//! This is a purpose-built open-addressing table mapping non-zero `Key`s to
//! `u32` slot indices: no tombstones (trees are built, queried, and cleared
//! wholesale each step), linear probing, power-of-two capacity, Fibonacci
//! key mixing. `std::collections::HashMap` would work, but the table *is*
//! the paper's data structure — and `SipHash` on hot lookups during a tree
//! walk is exactly the overhead the original avoided.

use hot_morton::Key;
use std::sync::atomic::{AtomicU64, Ordering};

/// Open-addressing `Key → u32` map.
#[derive(Debug)]
pub struct KeyTable {
    /// Keys; `Key::INVALID` (0) marks an empty slot.
    keys: Vec<Key>,
    vals: Vec<u32>,
    len: usize,
    /// Capacity - 1 (capacity is a power of two).
    mask: usize,
    /// Slots examined across every `get`/`insert` (the paper's hash-probe
    /// diagnostic). Relaxed atomic so shared (`&self`) lookups can count;
    /// the *sum* is order-independent, hence deterministic whenever the
    /// lookup multiset is. Not part of the table's logical state.
    probes: AtomicU64,
}

impl Clone for KeyTable {
    fn clone(&self) -> Self {
        KeyTable {
            keys: self.keys.clone(),
            vals: self.vals.clone(),
            len: self.len,
            mask: self.mask,
            probes: AtomicU64::new(self.probes.load(Ordering::Relaxed)),
        }
    }
}

impl KeyTable {
    /// Create a table able to hold `capacity_hint` entries before growing.
    pub fn with_capacity(capacity_hint: usize) -> Self {
        // Keep load factor under 1/2.
        let cap = (capacity_hint.max(8) * 2).next_power_of_two();
        KeyTable {
            keys: vec![Key::INVALID; cap],
            vals: vec![0; cap],
            len: 0,
            mask: cap - 1,
            probes: AtomicU64::new(0),
        }
    }

    /// Total slots examined by `get` and `insert` since construction (or
    /// [`KeyTable::reset_probes`]). Probes during internal growth count:
    /// they are real memory touches.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Zero the probe counter.
    pub fn reset_probes(&self) {
        self.probes.store(0, Ordering::Relaxed);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    #[inline(always)]
    fn slot_of(&self, key: Key) -> usize {
        (key.hash64() as usize) & self.mask
    }

    /// Insert or overwrite. Returns the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: Key, val: u32) -> Option<u32> {
        debug_assert!(key != Key::INVALID, "cannot insert the sentinel key");
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mut i = self.slot_of(key);
        let mut probed = 1u64;
        loop {
            if self.keys[i] == Key::INVALID {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                self.probes.fetch_add(probed, Ordering::Relaxed);
                return None;
            }
            if self.keys[i] == key {
                let old = self.vals[i];
                self.vals[i] = val;
                self.probes.fetch_add(probed, Ordering::Relaxed);
                return Some(old);
            }
            i = (i + 1) & self.mask;
            probed += 1;
        }
    }

    /// Look a key up.
    #[inline]
    pub fn get(&self, key: Key) -> Option<u32> {
        debug_assert!(key != Key::INVALID);
        let mut i = self.slot_of(key);
        let mut probed = 1u64;
        loop {
            let k = self.keys[i];
            if k == key {
                self.probes.fetch_add(probed, Ordering::Relaxed);
                return Some(self.vals[i]);
            }
            if k == Key::INVALID {
                self.probes.fetch_add(probed, Ordering::Relaxed);
                return None;
            }
            i = (i + 1) & self.mask;
            probed += 1;
        }
    }

    /// Does the table contain `key`?
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        self.get(key).is_some()
    }

    /// Drop every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.keys.fill(Key::INVALID);
        self.len = 0;
    }

    /// Iterate live `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, u32)> + '_ {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|(k, _)| **k != Key::INVALID)
            .map(|(&k, &v)| (k, v))
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![Key::INVALID; new_cap]);
        let old_vals = std::mem::take(&mut self.vals);
        self.vals = vec![0; new_cap];
        self.mask = new_cap - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != Key::INVALID {
                self.insert(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_morton::MAX_DEPTH;

    #[test]
    fn insert_get() {
        let mut t = KeyTable::with_capacity(4);
        assert!(t.is_empty());
        assert_eq!(t.insert(Key::ROOT, 7), None);
        assert_eq!(t.get(Key::ROOT), Some(7));
        assert_eq!(t.get(Key::ROOT.child(1)), None);
        assert_eq!(t.insert(Key::ROOT, 9), Some(7));
        assert_eq!(t.get(Key::ROOT), Some(9));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_sibling_keys() {
        // Sibling keys differ only in low bits — the historical worst case
        // for masked hashing; the mixer must spread them.
        let mut t = KeyTable::with_capacity(8);
        let mut keys = Vec::new();
        let mut k = Key::ROOT;
        for d in 0..MAX_DEPTH {
            k = k.child((d % 8) as u8);
            for c in 0..8u8 {
                if k.level() < MAX_DEPTH {
                    keys.push(k.child(c));
                }
            }
        }
        for (i, &key) in keys.iter().enumerate() {
            t.insert(key, i as u32);
        }
        assert_eq!(t.len(), keys.len());
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(t.get(key), Some(i as u32), "key {key:?}");
        }
    }

    #[test]
    fn growth_preserves_entries() {
        let mut t = KeyTable::with_capacity(2);
        let n = 10_000u32;
        for i in 0..n {
            t.insert(Key((1u64 << 63) | i as u64), i);
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.capacity() >= 2 * n as usize);
        for i in 0..n {
            assert_eq!(t.get(Key((1u64 << 63) | i as u64)), Some(i));
        }
    }

    #[test]
    fn clear_retains_capacity() {
        let mut t = KeyTable::with_capacity(2);
        for i in 0..100u32 {
            t.insert(Key(1 + i as u64 * 8), i);
        }
        let cap = t.capacity();
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.capacity(), cap);
        assert_eq!(t.get(Key(1)), None);
        t.insert(Key(1), 5);
        assert_eq!(t.get(Key(1)), Some(5));
    }

    #[test]
    fn iter_yields_all() {
        let mut t = KeyTable::with_capacity(4);
        for i in 1..=50u32 {
            t.insert(Key(i as u64), i * 2);
        }
        let mut pairs: Vec<_> = t.iter().collect();
        pairs.sort_by_key(|(k, _)| k.0);
        assert_eq!(pairs.len(), 50);
        for (i, (k, v)) in pairs.into_iter().enumerate() {
            assert_eq!(k.0, i as u64 + 1);
            assert_eq!(v, (i as u32 + 1) * 2);
        }
    }

    #[test]
    fn probe_counter_counts_hits_misses_and_resets() {
        let build = || {
            let mut t = KeyTable::with_capacity(8);
            for i in 1..=20u64 {
                t.insert(Key(i * 3), i as u32);
            }
            t
        };
        let t = build();
        let after_insert = t.probes();
        assert!(after_insert >= 20, "every insert probes at least once");
        assert_eq!(t.get(Key(3)), Some(1));
        assert!(t.probes() > after_insert, "hits count probes");
        let p = t.probes();
        assert_eq!(t.get(Key(1000)), None);
        assert!(t.probes() > p, "misses count probes");
        // The count is a pure function of the operation sequence.
        let t2 = build();
        assert_eq!(t2.probes(), after_insert);
        t.reset_probes();
        assert_eq!(t.probes(), 0);
        // Cloning carries the counter value.
        let _ = t.get(Key(3));
        assert_eq!(t.clone().probes(), t.probes());
    }

    #[test]
    fn randomized_against_std_hashmap() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut t = KeyTable::with_capacity(16);
        let mut reference = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let k = Key(rng.gen_range(1..1_000u64));
            let v: u32 = rng.gen_range(0..1000);
            assert_eq!(t.insert(k, v), reference.insert(k, v), "insert {k:?}");
        }
        assert_eq!(t.len(), reference.len());
        for (&k, &v) in &reference {
            assert_eq!(t.get(k), Some(v));
        }
    }
}
