//! Interaction lists: the paper's list-build / list-apply split.
//!
//! The SC'97 treecode owes its per-processor flop rate to *not* doing the
//! force arithmetic inside the traversal: the walk only records which
//! sources each sink group interacts with — an **interaction list** — and
//! a separate apply stage streams the list through a batched kernel
//! (Karp's rsqrt, 38 flops per interaction). This module is that split for
//! the library: [`ListBuilder`] adapts the traversal's
//! [`Evaluator`](crate::walk::Evaluator) callbacks into an
//! [`InteractionList`] (`SoA` arrays of P-P sources and P-C accepted cells),
//! and physics modules implement [`ListConsumer`] to apply their kernels
//! to finished lists.
//!
//! # Accumulation-order contract
//!
//! Consumers must reproduce, bitwise, the accumulation order of the
//! original callback evaluators: per sink, segments are applied in list
//! (= traversal) order; each P-P segment is summed into a fresh local
//! accumulator which is then added to the sink's total once; each P-C
//! entry is added to the sink's total directly. This keeps the direct-sum
//! differential oracle, the trace goldens, and the schedule/fault bitwise
//! checks meaningful across the API change.

use crate::moments::Moments;
use crate::tree::Tree;
use crate::walk::Evaluator;
use hot_base::Vec3;
use std::ops::Range;

/// One segment of an interaction list, indexing into the `SoA` arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ListOp {
    /// P-P sources `start..end` (indices into the `pp_*` arrays).
    ///
    /// `src_start` is the tree-order index of the first source when the
    /// sources are local tree particles (so self-pairs can be skipped);
    /// ghost sources carry `None` and can never alias a sink.
    Pp {
        /// First index into the `pp_*` arrays.
        start: u32,
        /// One past the last index.
        end: u32,
        /// Tree-order index of the first source, if local.
        src_start: Option<u32>,
    },
    /// P-C accepted cells `start..end` (indices into the `pc_*` arrays).
    Pc {
        /// First index into the `pc_*` arrays.
        start: u32,
        /// One past the last index.
        end: u32,
    },
}

/// A P-P segment's sources, as structure-of-arrays slices.
pub struct PpView<'a, M: Moments> {
    /// Source x coordinates.
    pub x: &'a [f64],
    /// Source y coordinates.
    pub y: &'a [f64],
    /// Source z coordinates.
    pub z: &'a [f64],
    /// Source charges (mass, circulation, …).
    pub q: &'a [M::Charge],
    /// Tree-order index per source, or `u32::MAX` for ghosts. A source
    /// `j` is the sink `i`'s self-pair exactly when `idx[j] == i`.
    pub idx: &'a [u32],
}

/// A P-C segment's accepted cells, as structure-of-arrays slices.
pub struct PcView<'a, M: Moments> {
    /// Cell-center x coordinates.
    pub x: &'a [f64],
    /// Cell-center y coordinates.
    pub y: &'a [f64],
    /// Cell-center z coordinates.
    pub z: &'a [f64],
    /// Multipole moments per cell.
    pub m: &'a [M],
}

/// One list segment handed to a consumer, in traversal order.
pub enum Segment<'a, M: Moments> {
    /// Direct particle–particle sources.
    Pp(PpView<'a, M>),
    /// Accepted multipole cells.
    Pc(PcView<'a, M>),
}

/// The interaction list for one sink group: every source the group's walk
/// accepted, in traversal order, stored as structure-of-arrays so the
/// apply stage can stream it through batched kernels.
///
/// Buffers are meant to be reused: [`clear`](InteractionList::clear)
/// retains capacity, so steady-state evaluation allocates nothing.
#[derive(Clone, Default)]
pub struct InteractionList<M: Moments> {
    pp_x: Vec<f64>,
    pp_y: Vec<f64>,
    pp_z: Vec<f64>,
    pp_q: Vec<M::Charge>,
    pp_idx: Vec<u32>,
    pc_x: Vec<f64>,
    pc_y: Vec<f64>,
    pc_z: Vec<f64>,
    pc_m: Vec<M>,
    ops: Vec<ListOp>,
}

impl<M: Moments> InteractionList<M> {
    /// Empty list.
    pub fn new() -> Self {
        InteractionList {
            pp_x: Vec::new(),
            pp_y: Vec::new(),
            pp_z: Vec::new(),
            pp_q: Vec::new(),
            pp_idx: Vec::new(),
            pc_x: Vec::new(),
            pc_y: Vec::new(),
            pc_z: Vec::new(),
            pc_m: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Drop all entries, keeping allocations for reuse.
    pub fn clear(&mut self) {
        self.pp_x.clear();
        self.pp_y.clear();
        self.pp_z.clear();
        self.pp_q.clear();
        self.pp_idx.clear();
        self.pc_x.clear();
        self.pc_y.clear();
        self.pc_z.clear();
        self.pc_m.clear();
        self.ops.clear();
    }

    /// Append a P-P segment. `src_start` follows the
    /// [`Evaluator::particle_particle`] convention: the tree-order index
    /// of `src_pos[0]` for local sources, `None` for ghosts.
    pub fn push_pp(&mut self, src_pos: &[Vec3], src_charge: &[M::Charge], src_start: Option<usize>) {
        debug_assert_eq!(src_pos.len(), src_charge.len());
        let start = self.pp_x.len() as u32;
        for p in src_pos {
            self.pp_x.push(p.x);
            self.pp_y.push(p.y);
            self.pp_z.push(p.z);
        }
        self.pp_q.extend_from_slice(src_charge);
        match src_start {
            Some(s0) => self.pp_idx.extend((0..src_pos.len()).map(|j| (s0 + j) as u32)),
            None => self.pp_idx.extend(std::iter::repeat_n(u32::MAX, src_pos.len())),
        }
        let end = self.pp_x.len() as u32;
        self.ops.push(ListOp::Pp { start, end, src_start: src_start.map(|s| s as u32) });
    }

    /// Append a P-P segment by *gathering*: `idx` are arbitrary indices
    /// into the caller's full `pos`/`charge` arrays (the SPH neighbour-list
    /// shape, where sources are not a contiguous span). The entries keep
    /// their true indices in [`PpView::idx`], so consumers can still detect
    /// self-pairs and gather extra per-source fields; the segment carries
    /// `src_start: None`, so [`expected_stats`](Self::expected_stats)
    /// counts it conservatively at `gn·len` (no self-span subtraction).
    pub fn push_pp_gather(&mut self, idx: &[u32], pos: &[Vec3], charge: &[M::Charge]) {
        let start = self.pp_x.len() as u32;
        for &j in idx {
            let p = pos[j as usize];
            self.pp_x.push(p.x);
            self.pp_y.push(p.y);
            self.pp_z.push(p.z);
            self.pp_q.push(charge[j as usize]);
        }
        self.pp_idx.extend_from_slice(idx);
        let end = self.pp_x.len() as u32;
        self.ops.push(ListOp::Pp { start, end, src_start: None });
    }

    /// Append one accepted cell. Consecutive cells coalesce into a single
    /// P-C segment — bitwise-safe, because P-C contributions are added to
    /// the sink directly, one cell at a time, in either shape.
    pub fn push_pc(&mut self, center: Vec3, m: &M) {
        let at = self.pc_x.len() as u32;
        self.pc_x.push(center.x);
        self.pc_y.push(center.y);
        self.pc_z.push(center.z);
        self.pc_m.push(*m);
        match self.ops.last_mut() {
            Some(ListOp::Pc { end, .. }) if *end == at => *end = at + 1,
            _ => self.ops.push(ListOp::Pc { start: at, end: at + 1 }),
        }
    }

    /// Total P-P source entries (before the per-sink fan-out).
    pub fn pp_entries(&self) -> u64 {
        self.pp_x.len() as u64
    }

    /// Total P-C cell entries.
    pub fn pc_entries(&self) -> u64 {
        self.pc_x.len() as u64
    }

    /// True when the walk accepted nothing (a single-particle system).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The segments in traversal order.
    pub fn segments(&self) -> impl Iterator<Item = Segment<'_, M>> {
        self.ops.iter().map(move |op| match *op {
            ListOp::Pp { start, end, .. } => {
                let r = start as usize..end as usize;
                Segment::Pp(PpView {
                    x: &self.pp_x[r.clone()],
                    y: &self.pp_y[r.clone()],
                    z: &self.pp_z[r.clone()],
                    q: &self.pp_q[r.clone()],
                    idx: &self.pp_idx[r],
                })
            }
            ListOp::Pc { start, end } => {
                let r = start as usize..end as usize;
                Segment::Pc(PcView {
                    x: &self.pc_x[r.clone()],
                    y: &self.pc_y[r.clone()],
                    z: &self.pc_z[r.clone()],
                    m: &self.pc_m[r],
                })
            }
        })
    }

    /// The interaction counts this list *must* produce when applied to the
    /// sink group `sinks`, in the walk's own units: P-P pairs exclude
    /// self-pairs (a local segment that is exactly the sink span
    /// contributes `gn·(len−1)`, every other segment `gn·len`), and each
    /// accepted cell counts once per sink. The apply stage pins its
    /// consumed totals against these — the `WalkStats` double-counting
    /// guard.
    pub fn expected_stats(&self, sinks: &Range<usize>) -> (u64, u64) {
        let gn = sinks.len() as u64;
        let mut pp = 0u64;
        let mut pc = 0u64;
        for op in &self.ops {
            match *op {
                ListOp::Pp { start, end, src_start } => {
                    let len = u64::from(end - start);
                    let self_span =
                        src_start == Some(sinks.start as u32) && len == gn;
                    pp += gn * len - if self_span { gn } else { 0 };
                }
                ListOp::Pc { start, end } => pc += gn * u64::from(end - start),
            }
        }
        (pp, pc)
    }
}

/// Adapts the traversal's [`Evaluator`] callbacks into an
/// [`InteractionList`]: the walk "evaluates" by recording, deferring all
/// arithmetic to the apply stage.
pub struct ListBuilder<'a, M: Moments> {
    list: &'a mut InteractionList<M>,
}

impl<'a, M: Moments> ListBuilder<'a, M> {
    /// Build into `list` (cleared by the caller).
    pub fn new(list: &'a mut InteractionList<M>) -> Self {
        ListBuilder { list }
    }
}

impl<M: Moments> Evaluator<M> for ListBuilder<'_, M> {
    fn particle_cell(&mut self, _tree: &Tree<M>, _sinks: Range<usize>, center: Vec3, m: &M) {
        self.list.push_pc(center, m);
    }

    fn particle_particle(
        &mut self,
        _tree: &Tree<M>,
        _sinks: Range<usize>,
        src_pos: &[Vec3],
        src_charge: &[M::Charge],
        src_start: Option<usize>,
    ) {
        self.list.push_pp(src_pos, src_charge, src_start);
    }
}

/// The apply stage: physics modules implement this to consume finished
/// interaction lists with their batched kernels. One call covers one sink
/// group; `sink_pos`/`sink_charge` are indexed by *absolute* sink index
/// (the walk's tree order, or the caller's own order for tree-less users
/// like the SPH neighbour loops).
///
/// Implementations must honour the module-level accumulation-order
/// contract and must count their own flops — the walk no longer sees the
/// arithmetic.
pub trait ListConsumer<M: Moments> {
    /// Apply every segment of `list` to the sinks `sinks`.
    fn consume(
        &mut self,
        sink_pos: &[Vec3],
        sink_charge: &[M::Charge],
        sinks: Range<usize>,
        list: &InteractionList<M>,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::MassMoments;

    fn v(x: f64) -> Vec3 {
        Vec3::new(x, x * 2.0, x * 3.0)
    }

    #[test]
    fn push_and_view_round_trip() {
        let mut l = InteractionList::<MassMoments>::new();
        l.push_pp(&[v(1.0), v(2.0)], &[1.0, 2.0], Some(5));
        let m = MassMoments::from_particle(v(9.0), &3.0, v(9.0));
        l.push_pc(v(4.0), &m);
        l.push_pc(v(5.0), &m);
        l.push_pp(&[v(7.0)], &[7.0], None);

        assert_eq!(l.pp_entries(), 3);
        assert_eq!(l.pc_entries(), 2);
        let segs: Vec<_> = l.segments().collect();
        assert_eq!(segs.len(), 3, "adjacent pc pushes must coalesce");
        match &segs[0] {
            Segment::Pp(p) => {
                assert_eq!(p.x, &[1.0, 2.0]);
                assert_eq!(p.idx, &[5, 6]);
                assert_eq!(p.q, &[1.0, 2.0]);
            }
            Segment::Pc(_) => panic!("want pp first"),
        }
        match &segs[1] {
            Segment::Pc(c) => {
                assert_eq!(c.x, &[4.0, 5.0]);
                assert_eq!(c.m.len(), 2);
            }
            Segment::Pp(_) => panic!("want coalesced pc second"),
        }
        match &segs[2] {
            Segment::Pp(p) => assert_eq!(p.idx, &[u32::MAX]),
            Segment::Pc(_) => panic!("want ghost pp last"),
        }
    }

    #[test]
    fn expected_stats_follow_the_pair_convention() {
        let mut l = InteractionList::<MassMoments>::new();
        let sinks = 10usize..14; // gn = 4
        // Exact self-span: gn*(gn-1) = 12.
        l.push_pp(&[v(0.0); 4], &[1.0; 4], Some(10));
        // Disjoint local leaf of 3: gn*3 = 12.
        l.push_pp(&[v(0.0); 3], &[1.0; 3], Some(2));
        // Ghosts: gn*2 = 8.
        l.push_pp(&[v(0.0); 2], &[1.0; 2], None);
        // Two cells: gn*2 = 8.
        let m = MassMoments::from_particle(v(1.0), &1.0, v(1.0));
        l.push_pc(v(1.0), &m);
        l.push_pc(v(2.0), &m);
        assert_eq!(l.expected_stats(&sinks), (32, 8));

        // A same-start span of a *different* length is not the self-span.
        let mut l2 = InteractionList::<MassMoments>::new();
        l2.push_pp(&[v(0.0); 6], &[1.0; 6], Some(10));
        assert_eq!(l2.expected_stats(&sinks), (24, 0));
    }

    #[test]
    fn clear_retains_capacity() {
        let mut l = InteractionList::<MassMoments>::new();
        l.push_pp(&[v(1.0); 100], &[1.0; 100], None);
        let cap = l.pp_x.capacity();
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.pp_entries(), 0);
        assert_eq!(l.pp_x.capacity(), cap);
    }
}
