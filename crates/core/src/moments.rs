//! Generic multipole moments.
//!
//! The treecode library is physics-agnostic: *"Using a generic design, we
//! have implemented a variety of modules to solve problems in galactic
//! dynamics and cosmology as well as fluid-dynamical problems…"*. The
//! [`Moments`] trait is that seam. A physics module supplies:
//!
//! * the per-particle source strength (`Charge`: a scalar mass for gravity,
//!   a vector strength for vortex particles),
//! * how to form a cell expansion from one particle (P2M),
//! * how to shift and merge child expansions into a parent (M2M),
//! * scalar summaries the multipole acceptance criteria need.
//!
//! Cell expansion centers are charge-weighted centroids chosen by the tree
//! build, so dipole terms vanish identically for scalar charges (Newton's
//! point-mass insight, as the paper puts it).

use crate::wirevec::{get_vec3, put_vec3};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hot_base::{SymMat3, Vec3};
use hot_comm::Wire;

/// Multipole expansion data carried by every tree cell.
pub trait Moments: Clone + Copy + Default + Send + Sync + Wire + 'static {
    /// Per-particle source strength.
    type Charge: Clone + Copy + Send + Sync + Wire + 'static;

    /// Non-negative weight used to place expansion centers (e.g. mass, or
    /// `|α|` for vortex particles).
    fn weight(q: &Self::Charge) -> f64;

    /// Expansion of a single particle at `pos` about `center`.
    fn from_particle(pos: Vec3, q: &Self::Charge, center: Vec3) -> Self;

    /// Merge `other` (an expansion about `other_center`) into `self` (an
    /// expansion about `center`).
    fn accumulate_shifted(&mut self, other: &Self, other_center: Vec3, center: Vec3);

    /// Total absolute source strength of the expansion.
    fn total_weight(&self) -> f64;

    /// Second absolute moment about the expansion center,
    /// `Σ |qᵢ| · |xᵢ − c|²`, used by the Salmon–Warren error-bound MAC.
    fn b2(&self) -> f64;
}

/// Gravitational mass moments: total mass, traced quadrupole about the
/// center of mass, and the B₂ error-bound moment.
///
/// The expansion center handed to [`Moments::from_particle`] /
/// [`Moments::accumulate_shifted`] is the center of mass, so no dipole term
/// is stored — it is identically zero.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MassMoments {
    /// Total mass.
    pub mass: f64,
    /// Raw second-moment tensor `Σ mᵢ rᵢ rᵢᵀ` about the cell center
    /// (`r = x − c`). The traceless combination is formed in the kernel.
    pub quad: SymMat3,
    /// `Σ mᵢ |rᵢ|²` (equals `trace(quad)`, kept explicit for the MAC).
    pub b2: f64,
}

impl Wire for MassMoments {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64_le(self.mass);
        for v in self.quad.m {
            buf.put_f64_le(v);
        }
        buf.put_f64_le(self.b2);
    }
    fn decode(buf: &mut Bytes) -> Self {
        let mass = buf.get_f64_le();
        let mut m = [0.0; 6];
        for v in &mut m {
            *v = buf.get_f64_le();
        }
        let b2 = buf.get_f64_le();
        MassMoments { mass, quad: SymMat3 { m }, b2 }
    }
    fn wire_size(&self) -> usize {
        64
    }
}

impl Moments for MassMoments {
    type Charge = f64;

    #[inline]
    fn weight(q: &f64) -> f64 {
        q.abs()
    }

    #[inline]
    fn from_particle(pos: Vec3, q: &f64, center: Vec3) -> Self {
        let r = pos - center;
        MassMoments { mass: *q, quad: SymMat3::outer(r) * *q, b2: *q * r.norm2() }
    }

    #[inline]
    fn accumulate_shifted(&mut self, other: &Self, other_center: Vec3, center: Vec3) {
        let d = other_center - center;
        self.mass += other.mass;
        // Parallel-axis shift: children are expanded about their own
        // centroids, so their dipole about `other_center` vanishes and the
        // shift needs only the m·ddᵀ term.
        self.quad += other.quad + SymMat3::outer(d) * other.mass;
        self.b2 += other.b2 + other.mass * d.norm2();
    }

    #[inline]
    fn total_weight(&self) -> f64 {
        self.mass
    }

    #[inline]
    fn b2(&self) -> f64 {
        self.b2
    }
}

/// Monopole-only variant used by the ablation benches: same charge type,
/// no quadrupole bookkeeping.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MonoMoments {
    /// Total mass.
    pub mass: f64,
    /// `Σ mᵢ |rᵢ|²` for the error-bound MAC.
    pub b2: f64,
}

impl Wire for MonoMoments {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64_le(self.mass);
        buf.put_f64_le(self.b2);
    }
    fn decode(buf: &mut Bytes) -> Self {
        let mass = buf.get_f64_le();
        let b2 = buf.get_f64_le();
        MonoMoments { mass, b2 }
    }
    fn wire_size(&self) -> usize {
        16
    }
}

impl Moments for MonoMoments {
    type Charge = f64;

    fn weight(q: &f64) -> f64 {
        q.abs()
    }

    fn from_particle(pos: Vec3, q: &f64, center: Vec3) -> Self {
        MonoMoments { mass: *q, b2: *q * (pos - center).norm2() }
    }

    fn accumulate_shifted(&mut self, other: &Self, other_center: Vec3, center: Vec3) {
        let d = other_center - center;
        self.mass += other.mass;
        self.b2 += other.b2 + other.mass * d.norm2();
    }

    fn total_weight(&self) -> f64 {
        self.mass
    }

    fn b2(&self) -> f64 {
        self.b2
    }
}

/// Vector-charge moments for the vortex particle method: total vortex
/// strength `Σ αᵢ` plus the first-moment matrix `Σ αᵢ ⊗ rᵢ` (used by the
/// higher-order far-field velocity term) and the `|α|`-weighted b2.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VectorMoments {
    /// Total vector strength `Σ αᵢ`.
    pub alpha: Vec3,
    /// First moment `Σ αᵢ ⊗ rᵢ` stored row-major (rows = α components).
    pub alpha_r: [[f64; 3]; 3],
    /// Total `Σ |αᵢ|`.
    pub abs_alpha: f64,
    /// `Σ |αᵢ| · |rᵢ|²`.
    pub b2: f64,
}

impl Wire for VectorMoments {
    fn encode(&self, buf: &mut BytesMut) {
        put_vec3(buf, self.alpha);
        for row in &self.alpha_r {
            for &v in row {
                buf.put_f64_le(v);
            }
        }
        buf.put_f64_le(self.abs_alpha);
        buf.put_f64_le(self.b2);
    }
    fn decode(buf: &mut Bytes) -> Self {
        let alpha = get_vec3(buf);
        let mut alpha_r = [[0.0; 3]; 3];
        for row in &mut alpha_r {
            for v in row.iter_mut() {
                *v = buf.get_f64_le();
            }
        }
        let abs_alpha = buf.get_f64_le();
        let b2 = buf.get_f64_le();
        VectorMoments { alpha, alpha_r, abs_alpha, b2 }
    }
    fn wire_size(&self) -> usize {
        24 + 72 + 16
    }
}

impl Moments for VectorMoments {
    type Charge = Vec3;

    fn weight(q: &Vec3) -> f64 {
        q.norm()
    }

    fn from_particle(pos: Vec3, q: &Vec3, center: Vec3) -> Self {
        let r = pos - center;
        let alpha_r: [[f64; 3]; 3] = std::array::from_fn(|i| std::array::from_fn(|j| (*q)[i] * r[j]));
        VectorMoments { alpha: *q, alpha_r, abs_alpha: q.norm(), b2: q.norm() * r.norm2() }
    }

    fn accumulate_shifted(&mut self, other: &Self, other_center: Vec3, center: Vec3) {
        let d = other_center - center;
        self.alpha += other.alpha;
        for i in 0..3 {
            for j in 0..3 {
                // Σ α (r' + d)ᵀ = Σ α r'ᵀ + (Σ α) dᵀ
                self.alpha_r[i][j] += other.alpha_r[i][j] + other.alpha[i] * d[j];
            }
        }
        self.abs_alpha += other.abs_alpha;
        // |α|-weighted parallel-axis bound: |r|² ≤ |r'|² + 2|r'||d| + |d|²;
        // we use the exact shift of the second moment about the weighted
        // centroid, which (like mass) has vanishing weighted dipole only if
        // centers are |α|-centroids — they are, by construction.
        self.b2 += other.b2 + other.abs_alpha * d.norm2();
    }

    fn total_weight(&self) -> f64 {
        self.abs_alpha
    }

    fn b2(&self) -> f64 {
        self.b2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_comm::{from_bytes, to_bytes};

    #[test]
    fn mass_moments_single_particle() {
        let c = Vec3::new(1.0, 1.0, 1.0);
        let p = Vec3::new(2.0, 1.0, 1.0);
        let m = MassMoments::from_particle(p, &3.0, c);
        assert_eq!(m.mass, 3.0);
        assert_eq!(m.b2, 3.0);
        assert_eq!(m.quad.m[0], 3.0); // xx
        assert_eq!(m.quad.trace(), 3.0);
    }

    #[test]
    fn mass_moments_shift_matches_direct() {
        // Build moments of 4 particles two ways: directly about the global
        // centroid, and via two sub-groups merged with the parallel-axis
        // shift. They must agree.
        let pts = [
            (Vec3::new(0.0, 0.0, 0.0), 1.0),
            (Vec3::new(1.0, 0.0, 0.0), 2.0),
            (Vec3::new(0.0, 2.0, 0.0), 1.5),
            (Vec3::new(1.0, 2.0, 3.0), 0.5),
        ];
        let mtot: f64 = pts.iter().map(|(_, m)| m).sum();
        let com = pts.iter().map(|&(p, m)| p * m).fold(Vec3::ZERO, |a, b| a + b) / mtot;

        let mut direct = MassMoments::default();
        for &(p, m) in &pts {
            let mm = MassMoments::from_particle(p, &m, com);
            direct.accumulate_shifted(&mm, com, com);
        }

        // Two sub-groups about their own coms.
        let groups = [&pts[..2], &pts[2..]];
        let mut merged = MassMoments::default();
        for g in groups {
            let gm: f64 = g.iter().map(|(_, m)| m).sum();
            let gc = g.iter().map(|&(p, m)| p * m).fold(Vec3::ZERO, |a, b| a + b) / gm;
            let mut sub = MassMoments::default();
            for &(p, m) in g {
                sub.accumulate_shifted(&MassMoments::from_particle(p, &m, gc), gc, gc);
            }
            merged.accumulate_shifted(&sub, gc, com);
        }

        assert!((direct.mass - merged.mass).abs() < 1e-12);
        assert!((direct.b2 - merged.b2).abs() < 1e-12);
        for i in 0..6 {
            assert!(
                (direct.quad.m[i] - merged.quad.m[i]).abs() < 1e-12,
                "quad component {i}: {} vs {}",
                direct.quad.m[i],
                merged.quad.m[i]
            );
        }
    }

    #[test]
    fn b2_equals_quad_trace() {
        let c = Vec3::ZERO;
        let mut acc = MassMoments::default();
        for i in 0..10 {
            let p = Vec3::new(i as f64 * 0.1, (i as f64).sin(), 0.3);
            acc.accumulate_shifted(&MassMoments::from_particle(p, &(1.0 + i as f64), c), c, c);
        }
        assert!((acc.b2 - acc.quad.trace()).abs() < 1e-12);
    }

    #[test]
    fn wire_roundtrip() {
        let m = MassMoments {
            mass: 2.5,
            quad: SymMat3::new(1.0, 2.0, 3.0, 4.0, 5.0, 6.0),
            b2: 6.0,
        };
        let back: MassMoments = from_bytes(to_bytes(&m));
        assert_eq!(back, m);

        let v = VectorMoments::from_particle(
            Vec3::new(1.0, 2.0, 3.0),
            &Vec3::new(0.1, -0.2, 0.3),
            Vec3::ZERO,
        );
        let back: VectorMoments = from_bytes(to_bytes(&v));
        assert_eq!(back, v);

        let mo = MonoMoments { mass: 1.25, b2: 0.5 };
        let back: MonoMoments = from_bytes(to_bytes(&mo));
        assert_eq!(back, mo);
    }

    #[test]
    fn vector_moments_shift_matches_direct() {
        let pts = [
            (Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0)),
            (Vec3::new(1.0, 1.0, 0.0), Vec3::new(0.0, 2.0, 0.0)),
            (Vec3::new(0.5, 0.0, 2.0), Vec3::new(0.0, 0.0, -1.0)),
        ];
        let wtot: f64 = pts.iter().map(|(_, a)| a.norm()).sum();
        let c = pts.iter().map(|&(p, a)| p * a.norm()).fold(Vec3::ZERO, |x, y| x + y) / wtot;

        let mut direct = VectorMoments::default();
        for &(p, a) in &pts {
            direct.accumulate_shifted(&VectorMoments::from_particle(p, &a, c), c, c);
        }

        // Merge one-by-one from each particle's own "centroid" (= itself).
        let mut merged = VectorMoments::default();
        for &(p, a) in &pts {
            let one = VectorMoments::from_particle(p, &a, p);
            merged.accumulate_shifted(&one, p, c);
        }
        assert!((direct.alpha - merged.alpha).norm() < 1e-12);
        for i in 0..3 {
            for j in 0..3 {
                assert!((direct.alpha_r[i][j] - merged.alpha_r[i][j]).abs() < 1e-12);
            }
        }
        assert!((direct.abs_alpha - merged.abs_alpha).abs() < 1e-12);
    }
}
