//! Work-weighted domain decomposition.
//!
//! From the paper: *"The domain decomposition is obtained by splitting this
//! \[Morton-ordered\] list into Np pieces. The implementation of the domain
//! decomposition is practically identical to a parallel sorting algorithm,
//! with the modification that the amount of data that ends up in each
//! processor is weighted by the work associated with each item."*
//!
//! This module implements exactly that: a weighted parallel sample sort.
//! Each rank samples its local key distribution at work quantiles, samples
//! are all-gathered, every rank deterministically derives the same `Np − 1`
//! splitting keys at global work quantiles, and an all-to-all exchange
//! moves each body to its owner. Per-body work weights come from the
//! previous step's interaction counts, so expensive (clustered) regions
//! spread over more processors — the load-balancing mechanism the paper
//! credits for surviving "probably more severe \[imbalance\] than any other
//! conventional computational physics algorithm".

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hot_base::Vec3;
use hot_comm::{Comm, Wire};
use hot_morton::Key;
use hot_trace::{Counter, Ledger, Phase};

/// A particle in flight between ranks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Body<C> {
    /// Morton key at maximum depth.
    pub key: Key,
    /// Position.
    pub pos: Vec3,
    /// Source strength (mass, vortex strength, …).
    pub charge: C,
    /// Relative cost of this body in the previous step (1.0 if unknown).
    pub work: f32,
    /// Stable global identifier.
    pub id: u64,
}

impl<C: Wire> Wire for Body<C> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.key.0);
        crate::wirevec::put_vec3(buf, self.pos);
        self.charge.encode(buf);
        buf.put_f32_le(self.work);
        buf.put_u64_le(self.id);
    }
    fn decode(buf: &mut Bytes) -> Self {
        let key = Key(buf.get_u64_le());
        let pos = crate::wirevec::get_vec3(buf);
        let charge = C::decode(buf);
        let work = buf.get_f32_le();
        let id = buf.get_u64_le();
        Body { key, pos, charge, work, id }
    }
    fn wire_size(&self) -> usize {
        8 + 24 + self.charge.wire_size() + 4 + 8
    }
}

/// The key intervals owned by each rank: rank `r` owns raw keys in
/// `[bounds[r], bounds[r+1])`; `bounds[0] = 0`, `bounds[np] = u64::MAX`
/// (the maximal key `u64::MAX` itself is owned by the last rank).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyIntervals {
    /// `np + 1` interval boundaries in raw key space.
    pub bounds: Vec<u64>,
}

impl KeyIntervals {
    /// Owner rank of a key.
    pub fn owner(&self, key: Key) -> u32 {
        // partition_point: first boundary > key; minus one = owning interval.
        let i = self.bounds.partition_point(|&b| b <= key.0);
        (i.saturating_sub(1)).min(self.bounds.len() - 2) as u32
    }

    /// Number of ranks.
    pub fn np(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Raw interval `[lo, hi)` of `rank`. The last rank's `hi` is
    /// `u64::MAX` and, exceptionally, inclusive.
    pub fn interval(&self, rank: u32) -> (u64, u64) {
        (self.bounds[rank as usize], self.bounds[rank as usize + 1])
    }

    /// Does `rank` own `key`?
    pub fn owns(&self, rank: u32, key: Key) -> bool {
        self.owner(key) == rank
    }
}

/// Decompose bodies across the machine by weighted parallel sample sort.
///
/// Returns this rank's bodies sorted by key, plus the global key intervals.
/// `oversample` controls splitter quality (samples per rank; 32–128 is
/// plenty for the load tolerances the tree cares about).
pub fn decompose<C: Wire + Copy + Send>(
    comm: &mut Comm,
    bodies: Vec<Body<C>>,
    oversample: usize,
) -> (Vec<Body<C>>, KeyIntervals) {
    decompose_traced(comm, bodies, oversample, &mut Ledger::scratch())
}

/// [`decompose`], recording a [`Phase::Decomp`] span into `trace`: bodies
/// received in the exchange, plus the sample-allgather and all-to-all
/// traffic. Collective traffic is bitwise schedule-independent (the
/// schedule checker enforces it), so raw `TrafficStats` deltas are safe
/// here — unlike in the ABM-driven walk.
pub fn decompose_traced<C: Wire + Copy + Send>(
    comm: &mut Comm,
    mut bodies: Vec<Body<C>>,
    oversample: usize,
    trace: &mut Ledger,
) -> (Vec<Body<C>>, KeyIntervals) {
    trace.begin(Phase::Decomp);
    let wire_before = comm.stats();
    let np = comm.size() as usize;
    bodies.sort_unstable_by_key(|b| b.key);
    if np == 1 {
        trace.end();
        return (bodies, KeyIntervals { bounds: vec![0, u64::MAX] });
    }
    let oversample = oversample.max(4);

    // Local work and its global total.
    let local_work: f64 = bodies.iter().map(|b| b.work as f64).sum();
    // Sample keys at regular *work* quantiles of the local list. Each
    // sample represents local_work / oversample units of work.
    let mut samples: Vec<(u64, f64)> = Vec::with_capacity(oversample);
    if !bodies.is_empty() && local_work > 0.0 {
        let step = local_work / oversample as f64;
        let mut next = step * 0.5;
        let mut acc = 0.0;
        for b in &bodies {
            acc += b.work as f64;
            while acc > next && samples.len() < oversample {
                samples.push((b.key.0, step));
                next += step;
            }
        }
        while samples.len() < oversample {
            // Guarded by the enclosing non-empty check; a miss is a bug.
            // hot-lint: allow(unwrap-audit)
            samples.push((bodies.last().expect("nonempty").key.0, step));
        }
    }

    // Everyone sees every sample and derives identical splitters.
    let all: Vec<Vec<(u64, f64)>> = comm.allgather(samples);
    let mut flat: Vec<(u64, f64)> = all.into_iter().flatten().collect();
    flat.sort_unstable_by_key(|&(k, _)| k);
    let total_weight: f64 = flat.iter().map(|&(_, w)| w).sum();

    let mut bounds = Vec::with_capacity(np + 1);
    bounds.push(0u64);
    if total_weight > 0.0 {
        let mut acc = 0.0;
        let mut next_cut = total_weight / np as f64;
        for &(k, w) in &flat {
            acc += w;
            while acc >= next_cut && bounds.len() < np {
                bounds.push(k.saturating_add(1));
                next_cut += total_weight / np as f64;
            }
        }
    }
    while bounds.len() < np {
        bounds.push(u64::MAX);
    }
    bounds.push(u64::MAX);
    // Monotonicity can be violated by duplicate sample keys; repair.
    for i in 1..bounds.len() {
        if bounds[i] < bounds[i - 1] {
            bounds[i] = bounds[i - 1];
        }
    }
    let intervals = KeyIntervals { bounds };

    // Route every body to its owner.
    let mut buckets: Vec<Vec<Body<C>>> = (0..np).map(|_| Vec::new()).collect();
    for b in bodies {
        buckets[intervals.owner(b.key) as usize].push(b);
    }
    let received = comm.alltoall(buckets);
    let mut mine: Vec<Body<C>> = received.into_iter().flatten().collect();
    mine.sort_unstable_by_key(|b| b.key);
    trace.add(Counter::BodiesExchanged, mine.len() as u64);
    trace.add_traffic(&comm.stats().since(&wire_before));
    trace.end();
    (mine, intervals)
}

#[cfg(test)]
mod tests {
    use hot_comm::RunConfig;
    use super::*;
    use hot_base::Aabb;
    use rand::{Rng, SeedableRng};

    fn make_bodies(rank: u32, n: usize, seed: u64) -> Vec<Body<f64>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + rank as u64);
        (0..n)
            .map(|i| {
                let pos = Vec3::new(rng.gen(), rng.gen(), rng.gen());
                Body {
                    key: Key::from_point(pos, &Aabb::unit()),
                    pos,
                    charge: 1.0,
                    work: 1.0,
                    id: rank as u64 * 1_000_000 + i as u64,
                }
            })
            .collect()
    }

    #[test]
    fn body_wire_roundtrip() {
        let b = Body { key: Key(123), pos: Vec3::new(1.0, 2.0, 3.0), charge: 4.5f64, work: 2.0, id: 99 };
        let back: Body<f64> = hot_comm::from_bytes(hot_comm::to_bytes(&b));
        assert_eq!(back, b);
    }

    #[test]
    fn interval_owner_logic() {
        let iv = KeyIntervals { bounds: vec![0, 100, 200, u64::MAX] };
        assert_eq!(iv.np(), 3);
        assert_eq!(iv.owner(Key(0)), 0);
        assert_eq!(iv.owner(Key(99)), 0);
        assert_eq!(iv.owner(Key(100)), 1);
        assert_eq!(iv.owner(Key(199)), 1);
        assert_eq!(iv.owner(Key(200)), 2);
        assert_eq!(iv.owner(Key(u64::MAX)), 2, "max key belongs to last rank");
        assert!(iv.owns(1, Key(150)));
        assert!(!iv.owns(0, Key(150)));
    }

    #[test]
    fn decompose_preserves_and_sorts() {
        for np in [1u32, 2, 4, 7] {
            let per_rank = 500;
            let out = RunConfig::builder().np(np).run(move |c| {
                let bodies = make_bodies(c.rank(), per_rank, 42);
                let (mine, iv) = decompose(c, bodies, 32);
                // Sorted and all owned by me.
                assert!(mine.windows(2).all(|w| w[0].key <= w[1].key));
                for b in &mine {
                    assert!(iv.owns(c.rank(), b.key), "body {b:?} not owned");
                }
                (mine.len(), mine.iter().map(|b| b.id).collect::<Vec<_>>(), iv)
            });
            // Global conservation of bodies.
            let total: usize = out.results.iter().map(|(n, _, _)| n).sum();
            assert_eq!(total, np as usize * per_rank, "np={np}");
            let mut all_ids: Vec<u64> =
                out.results.iter().flat_map(|(_, ids, _)| ids.clone()).collect();
            all_ids.sort_unstable();
            all_ids.dedup();
            assert_eq!(all_ids.len(), np as usize * per_rank, "ids lost or duplicated");
            // All ranks agree on the intervals.
            let iv0 = &out.results[0].2;
            for (_, _, iv) in &out.results {
                assert_eq!(iv, iv0);
            }
        }
    }

    #[test]
    fn uniform_work_is_balanced() {
        let np = 4u32;
        let per_rank = 2000;
        let out = RunConfig::builder().np(np).run(move |c| {
            let bodies = make_bodies(c.rank(), per_rank, 7);
            let (mine, _) = decompose(c, bodies, 64);
            mine.len()
        });
        let avg = per_rank as f64;
        for &n in &out.results {
            assert!(
                (n as f64) > avg * 0.7 && (n as f64) < avg * 1.3,
                "imbalanced: {n} vs avg {avg}: {:?}",
                out.results
            );
        }
    }

    #[test]
    fn heavy_work_region_gets_fewer_bodies() {
        // Bodies in the low-key octant carry 10x work. The rank(s) owning
        // that region should end up with substantially fewer bodies.
        let np = 4u32;
        let per_rank = 2000;
        let out = RunConfig::builder().np(np).run(move |c| {
            let mut bodies = make_bodies(c.rank(), per_rank, 3);
            for b in &mut bodies {
                // Octant 0 of the root = top 3 digit bits are 000.
                if (b.key.0 >> 60) & 7 == 0 {
                    b.work = 10.0;
                }
            }
            let (mine, _) = decompose(c, bodies, 64);
            let work: f64 = mine.iter().map(|b| b.work as f64).sum();
            (mine.len(), work)
        });
        // Work should be balanced...
        let works: Vec<f64> = out.results.iter().map(|&(_, w)| w).collect();
        let avg_w: f64 = works.iter().sum::<f64>() / np as f64;
        for &w in &works {
            assert!(w > avg_w * 0.6 && w < avg_w * 1.4, "work imbalance: {works:?}");
        }
        // ...which forces body-count imbalance.
        let counts: Vec<usize> = out.results.iter().map(|&(n, _)| n).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max as f64 > 1.5 * min as f64, "counts should skew: {counts:?}");
    }

    #[test]
    fn empty_ranks_tolerated() {
        // Rank 0 holds everything initially.
        let np = 3u32;
        let out = RunConfig::builder().np(np).run(|c| {
            let bodies =
                if c.rank() == 0 { make_bodies(0, 900, 5) } else { Vec::new() };
            let (mine, _) = decompose(c, bodies, 32);
            mine.len()
        });
        let total: usize = out.results.iter().sum();
        assert_eq!(total, 900);
        // Everyone got a decent share.
        for &n in &out.results {
            assert!(n > 100, "rank starved: {:?}", out.results);
        }
    }

    #[test]
    fn all_identical_keys_degenerate() {
        // Every body at the same point: splitters collapse; one rank owns
        // them all, nothing is lost, nobody deadlocks.
        let np = 3u32;
        let out = RunConfig::builder().np(np).run(|c| {
            let bodies: Vec<Body<f64>> = (0..100)
                .map(|i| Body {
                    key: Key::from_point(Vec3::splat(0.5), &Aabb::unit()),
                    pos: Vec3::splat(0.5),
                    charge: 1.0,
                    work: 1.0,
                    id: c.rank() as u64 * 1000 + i,
                })
                .collect();
            let (mine, _) = decompose(c, bodies, 16);
            mine.len()
        });
        let total: usize = out.results.iter().sum();
        assert_eq!(total, 300);
    }
}
