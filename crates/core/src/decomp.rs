//! Work-weighted domain decomposition.
//!
//! From the paper: *"The domain decomposition is obtained by splitting this
//! \[Morton-ordered\] list into Np pieces. The implementation of the domain
//! decomposition is practically identical to a parallel sorting algorithm,
//! with the modification that the amount of data that ends up in each
//! processor is weighted by the work associated with each item."*
//!
//! This module implements exactly that: a weighted parallel sample sort.
//! Each rank samples its local key distribution at work quantiles, samples
//! are all-gathered, every rank deterministically derives the same `Np − 1`
//! splitting keys at global work quantiles, and an all-to-all exchange
//! moves each body to its owner. Per-body work weights come from the
//! previous step's interaction counts, so expensive (clustered) regions
//! spread over more processors — the load-balancing mechanism the paper
//! credits for surviving "probably more severe \[imbalance\] than any other
//! conventional computational physics algorithm".
//!
//! # Feedback-driven adaptive decomposition
//!
//! The sample sort above re-sorts the whole key space from scratch every
//! step and costs bodies with whatever `work` weight the caller left in
//! them. The adaptive pipeline ([`DecompPolicy::Adaptive`]) closes the
//! loop against the trace ledger instead:
//!
//! * [`CostModel`] — deterministic integer EWMA of per-body cost, fed from
//!   the previous step's measured interactions + cells opened per sink
//!   group. Costs are exact integers `1..=2^24` stored in `Body::work`
//!   (exactly representable in the `f32`, so the wire format is unchanged
//!   and `DecompPolicy::Static` stays bitwise identical).
//! * [`rebalance_traced`] — the incremental repartition: first migrate the
//!   *drift diff* (bodies whose keys left their owner's interval), then
//!   compare the max/mean cost skew against the policy threshold. Below
//!   threshold the old [`KeyIntervals`] are reused verbatim; above it,
//!   [`cost_cut_bounds`] moves the interval cut points exactly (integer
//!   cost prefix sums, no sampling) and [`migrate_traced`] ships only the
//!   minimal key-range diff as coalesced per-peer [`Body`] batches on
//!   [`TAG_MIGRATE`].
//!
//! Both cut computations are pure functions of the global `(key, cost)`
//! multiset, so an incremental rebalance lands on bitwise the same
//! intervals and per-rank body sets as a from-scratch
//! [`decompose_costed_traced`] at the same costs (pinned by the property
//! suite).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hot_base::Vec3;
use hot_comm::{Comm, Wire};
use hot_morton::Key;
use hot_trace::{Counter, Ledger, Phase};

/// A particle in flight between ranks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Body<C> {
    /// Morton key at maximum depth.
    pub key: Key,
    /// Position.
    pub pos: Vec3,
    /// Source strength (mass, vortex strength, …).
    pub charge: C,
    /// Relative cost of this body in the previous step (1.0 if unknown).
    pub work: f32,
    /// Stable global identifier.
    pub id: u64,
}

impl<C: Wire> Wire for Body<C> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.key.0);
        crate::wirevec::put_vec3(buf, self.pos);
        self.charge.encode(buf);
        buf.put_f32_le(self.work);
        buf.put_u64_le(self.id);
    }
    fn decode(buf: &mut Bytes) -> Self {
        let key = Key(buf.get_u64_le());
        let pos = crate::wirevec::get_vec3(buf);
        let charge = C::decode(buf);
        let work = buf.get_f32_le();
        let id = buf.get_u64_le();
        Body { key, pos, charge, work, id }
    }
    fn wire_size(&self) -> usize {
        8 + 24 + self.charge.wire_size() + 4 + 8
    }
}

/// The key intervals owned by each rank: rank `r` owns raw keys in
/// `[bounds[r], bounds[r+1])`; `bounds[0] = 0`, `bounds[np] = u64::MAX`
/// (the maximal key `u64::MAX` itself is owned by the last rank).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyIntervals {
    /// `np + 1` interval boundaries in raw key space.
    pub bounds: Vec<u64>,
}

impl KeyIntervals {
    /// Owner rank of a key.
    pub fn owner(&self, key: Key) -> u32 {
        // partition_point: first boundary > key; minus one = owning interval.
        let i = self.bounds.partition_point(|&b| b <= key.0);
        (i.saturating_sub(1)).min(self.bounds.len() - 2) as u32
    }

    /// Number of ranks.
    pub fn np(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Raw interval `[lo, hi)` of `rank`. The last rank's `hi` is
    /// `u64::MAX` and, exceptionally, inclusive.
    pub fn interval(&self, rank: u32) -> (u64, u64) {
        (self.bounds[rank as usize], self.bounds[rank as usize + 1])
    }

    /// Does `rank` own `key`?
    pub fn owns(&self, rank: u32, key: Key) -> bool {
        self.owner(key) == rank
    }
}

/// Decompose bodies across the machine by weighted parallel sample sort.
///
/// Returns this rank's bodies sorted by key, plus the global key intervals.
/// `oversample` controls splitter quality (samples per rank; 32–128 is
/// plenty for the load tolerances the tree cares about).
pub fn decompose<C: Wire + Copy + Send>(
    comm: &mut Comm,
    bodies: Vec<Body<C>>,
    oversample: usize,
) -> (Vec<Body<C>>, KeyIntervals) {
    decompose_traced(comm, bodies, oversample, &mut Ledger::scratch())
}

/// [`decompose`], recording a [`Phase::Decomp`] span into `trace`: bodies
/// received in the exchange, plus the sample-allgather and all-to-all
/// traffic. Collective traffic is bitwise schedule-independent (the
/// schedule checker enforces it), so raw `TrafficStats` deltas are safe
/// here — unlike in the ABM-driven walk.
pub fn decompose_traced<C: Wire + Copy + Send>(
    comm: &mut Comm,
    mut bodies: Vec<Body<C>>,
    oversample: usize,
    trace: &mut Ledger,
) -> (Vec<Body<C>>, KeyIntervals) {
    trace.begin(Phase::Decomp);
    let wire_before = comm.stats();
    let np = comm.size() as usize;
    bodies.sort_unstable_by_key(|b| b.key);
    if np == 1 {
        trace.end();
        return (bodies, KeyIntervals { bounds: vec![0, u64::MAX] });
    }
    let oversample = oversample.max(4);

    // Local work and its global total.
    let local_work: f64 = bodies.iter().map(|b| b.work as f64).sum();
    // Sample keys at regular *work* quantiles of the local list. Each
    // sample represents local_work / oversample units of work.
    let mut samples: Vec<(u64, f64)> = Vec::with_capacity(oversample);
    if !bodies.is_empty() && local_work > 0.0 {
        let step = local_work / oversample as f64;
        let mut next = step * 0.5;
        let mut acc = 0.0;
        for b in &bodies {
            acc += b.work as f64;
            while acc > next && samples.len() < oversample {
                samples.push((b.key.0, step));
                next += step;
            }
        }
        while samples.len() < oversample {
            // Guarded by the enclosing non-empty check; a miss is a bug.
            // hot-lint: allow(unwrap-audit)
            samples.push((bodies.last().expect("nonempty").key.0, step));
        }
    }

    // Everyone sees every sample and derives identical splitters.
    let all: Vec<Vec<(u64, f64)>> = comm.allgather(samples);
    let mut flat: Vec<(u64, f64)> = all.into_iter().flatten().collect();
    flat.sort_unstable_by_key(|&(k, _)| k);
    let total_weight: f64 = flat.iter().map(|&(_, w)| w).sum();

    let mut bounds = Vec::with_capacity(np + 1);
    bounds.push(0u64);
    if total_weight > 0.0 {
        let mut acc = 0.0;
        let mut next_cut = total_weight / np as f64;
        for &(k, w) in &flat {
            acc += w;
            while acc >= next_cut && bounds.len() < np {
                bounds.push(k.saturating_add(1));
                next_cut += total_weight / np as f64;
            }
        }
    }
    while bounds.len() < np {
        bounds.push(u64::MAX);
    }
    bounds.push(u64::MAX);
    // Monotonicity can be violated by duplicate sample keys; repair.
    for i in 1..bounds.len() {
        if bounds[i] < bounds[i - 1] {
            bounds[i] = bounds[i - 1];
        }
    }
    let intervals = KeyIntervals { bounds };

    // Route every body to its owner.
    let mut buckets: Vec<Vec<Body<C>>> = (0..np).map(|_| Vec::new()).collect();
    for b in bodies {
        buckets[intervals.owner(b.key) as usize].push(b);
    }
    let received = comm.alltoall(buckets);
    let mut mine: Vec<Body<C>> = received.into_iter().flatten().collect();
    mine.sort_unstable_by_key(|b| b.key);
    trace.add(Counter::BodiesExchanged, mine.len() as u64);
    trace.add_traffic(&comm.stats().since(&wire_before));
    trace.end();
    (mine, intervals)
}

/// Wire tag of the incremental key-range migration batches
/// ([`migrate_traced`]): at most one `Vec<Body>` message per (source,
/// destination) pair per migration epoch.
pub const TAG_MIGRATE: u32 = 0x50;

/// Upper bound on a per-body integer cost. `2^24` is the largest range of
/// integers exactly representable in the `f32` `Body::work` carries on the
/// wire — costs never leave that range, so adaptive costs round-trip
/// bit-for-bit through the unchanged wire format.
pub const COST_CAP: u64 = 1 << 24;

/// How the decomposition reacts to measured load imbalance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DecompPolicy {
    /// Full weighted sample sort every step, with whatever `work` weights
    /// the caller supplies. The bitwise baseline: every existing golden is
    /// recorded under this policy.
    #[default]
    Static,
    /// Feedback-driven: re-cost bodies from the previous step's trace
    /// ledger, repartition incrementally only when the max/mean cost skew
    /// crosses the threshold, and migrate the minimal key-range diff.
    Adaptive {
        /// Skew trigger in milli-units, *relative to the achievable skew*:
        /// repartition when `1000 · skew > threshold_milli · floor`, where
        /// `floor = 1 + max_body_cost/mean_rank_cost` is the granularity
        /// bound no contiguous cost-quantile split can beat (1150 ⇒ 15%
        /// over achievable). At fine grain `floor ≈ 1`, recovering a plain
        /// max/mean threshold; at coarse grain the relative form keeps the
        /// loop from churning on imbalance that repartitioning cannot fix.
        threshold_milli: u32,
        /// EWMA weight on the *previous* cost, in 1/256 units
        /// (0 ⇒ take the new measurement outright, 256 ⇒ never update).
        smoothing: u32,
    },
}

impl DecompPolicy {
    /// The default adaptive policy: repartition at 15% over the achievable
    /// skew, heavy smoothing (7/8 on the previous cost) so measured-cost
    /// noise does not bounce the cut points.
    pub fn adaptive() -> Self {
        DecompPolicy::Adaptive { threshold_milli: 1150, smoothing: 224 }
    }

    /// True for [`DecompPolicy::Adaptive`].
    pub fn is_adaptive(&self) -> bool {
        matches!(self, DecompPolicy::Adaptive { .. })
    }
}

/// Deterministic integer exponential smoothing of per-body costs.
///
/// All arithmetic is integer (scale 1/256) and clamped to `1..=`
/// [`COST_CAP`], so blended costs are bitwise schedule-independent and
/// survive the `f32` round-trip through [`Body::work`] exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Weight on the previous cost, in 1/256 units (clamped to 256).
    pub smoothing: u32,
}

impl CostModel {
    /// Model with the given smoothing weight (1/256 units).
    pub fn new(smoothing: u32) -> Self {
        CostModel { smoothing: smoothing.min(256) }
    }

    /// Blend the previous cost with a fresh measurement:
    /// `(s·prev + (256−s)·measured) / 256`, clamped to `1..=COST_CAP`.
    pub fn blend(&self, prev: u64, measured: u64) -> u64 {
        let s = u64::from(self.smoothing);
        ((s * prev.min(COST_CAP) + (256 - s) * measured.min(COST_CAP)) >> 8).clamp(1, COST_CAP)
    }
}

/// A body's integer cost as the decomposition sees it: the `work` field
/// truncated and clamped to `1..=`[`COST_CAP`]. For adaptive-maintained
/// bodies the cast is exact (costs are integers ≤ `COST_CAP` by
/// construction); for caller-supplied fractional weights it is the
/// deterministic floor.
pub fn body_cost<C>(b: &Body<C>) -> u64 {
    (b.work as u64).clamp(1, COST_CAP)
}

/// Cost-quantile targets: rank `r` (1 ≤ r < np) splits at global cost
/// prefix `ceil(total·r/np)`.
fn cost_target(total: u64, np: usize, r: usize) -> u64 {
    let t = (u128::from(total) * r as u128).div_ceil(np as u128);
    t as u64
}

/// Exact integer cost cuts — the serial reference.
///
/// `items` is the *global* `(raw key, cost)` multiset sorted by key;
/// returns the `np + 1` interval bounds that [`cost_cut_bounds`] computes
/// distributively: bound `r` is one past the smallest key whose inclusive
/// cost prefix reaches `ceil(total·r/np)`. Cuts fall only on key
/// boundaries, so equal keys are never split across ranks.
pub fn cost_cut_bounds_serial(items: &[(u64, u64)], np: usize) -> Vec<u64> {
    debug_assert!(items.windows(2).all(|w| w[0].0 <= w[1].0), "items must be key-sorted");
    let total: u64 = items.iter().map(|&(_, c)| c).sum();
    let mut bounds = vec![u64::MAX; np + 1];
    bounds[0] = 0;
    if total > 0 {
        let mut acc = 0u64;
        let mut r = 1usize;
        let mut i = 0usize;
        while i < items.len() && r < np {
            let k = items[i].0;
            while i < items.len() && items[i].0 == k {
                acc += items[i].1;
                i += 1;
            }
            while r < np && cost_target(total, np, r) <= acc {
                bounds[r] = k.saturating_add(1);
                r += 1;
            }
        }
    }
    for i in 1..=np {
        if bounds[i] < bounds[i - 1] {
            bounds[i] = bounds[i - 1];
        }
    }
    bounds[np] = u64::MAX;
    bounds
}

/// Distributed exact integer cost cuts (collective).
///
/// Preconditions (both hold after any ownership-respecting exchange —
/// [`decompose_traced`] or [`migrate_traced`]): `bodies` is key-sorted,
/// every key lives wholly on one rank, and ranks hold ascending key
/// ranges. `totals` is the allgathered per-rank cost sum (`totals[r]` =
/// rank `r`'s [`body_cost`] sum), which the caller typically already has
/// from the skew check.
///
/// Each rank resolves the cut targets that fall inside its own cost
/// prefix range by scanning its equal-key groups, then one allgather
/// assembles the bounds — no sampling, no bisection, and the result is a
/// pure function of the global `(key, cost)` multiset (bitwise equal to
/// [`cost_cut_bounds_serial`] on the gathered multiset; pinned by the
/// property suite).
pub fn cost_cut_bounds<C>(comm: &mut Comm, bodies: &[Body<C>], totals: &[u64]) -> KeyIntervals {
    let np = comm.size() as usize;
    let rank = comm.rank() as usize;
    debug_assert_eq!(totals.len(), np);
    let total: u64 = totals.iter().sum();
    let offset: u64 = totals[..rank].iter().sum();

    // Resolve the targets in (offset, offset + local] against the local
    // inclusive cost prefix, advancing one equal-key group at a time so
    // cuts land only on key boundaries.
    let mut cands: Vec<(u32, u64)> = Vec::new();
    if total > 0 {
        let mut r = 1usize;
        while r < np && cost_target(total, np, r) <= offset {
            r += 1;
        }
        let mut acc = offset;
        let mut i = 0usize;
        while i < bodies.len() && r < np {
            let k = bodies[i].key;
            while i < bodies.len() && bodies[i].key == k {
                acc += body_cost(&bodies[i]);
                i += 1;
            }
            while r < np && cost_target(total, np, r) <= acc {
                cands.push((r as u32, k.0.saturating_add(1)));
                r += 1;
            }
        }
    }

    let all: Vec<Vec<(u32, u64)>> = comm.allgather(cands);
    let mut bounds = vec![u64::MAX; np + 1];
    bounds[0] = 0;
    for (r, b) in all.into_iter().flatten() {
        debug_assert_eq!(bounds[r as usize], u64::MAX, "cut {r} resolved twice");
        bounds[r as usize] = b;
    }
    for i in 1..=np {
        if bounds[i] < bounds[i - 1] {
            bounds[i] = bounds[i - 1];
        }
    }
    bounds[np] = u64::MAX;
    KeyIntervals { bounds }
}

/// Migrate the minimal key-range diff (collective): every body already
/// owned under `intervals` stays put; the rest move as one coalesced
/// `Vec<Body>` batch per (source, destination) pair on [`TAG_MIGRATE`].
///
/// Receive sides are made deterministic by allgathering the per-pair
/// batch counts first, then receiving from sources in ascending rank
/// order — message arrival order can never reorder the merge. Returns
/// this rank's bodies sorted by `(key, id)` and records
/// [`Counter::MigratedBodies`] / [`Counter::MigratedBytes`] plus the raw
/// traffic delta into the current span of `trace`.
pub fn migrate_traced<C: Wire + Copy + Send>(
    comm: &mut Comm,
    bodies: Vec<Body<C>>,
    intervals: &KeyIntervals,
    trace: &mut Ledger,
) -> Vec<Body<C>> {
    let np = comm.size() as usize;
    let rank = comm.rank();
    let wire_before = comm.stats();

    let mut keep: Vec<Body<C>> = Vec::with_capacity(bodies.len());
    let mut out: Vec<Vec<Body<C>>> = (0..np).map(|_| Vec::new()).collect();
    for b in bodies {
        let owner = intervals.owner(b.key);
        if owner == rank {
            keep.push(b);
        } else {
            out[owner as usize].push(b);
        }
    }

    // Fast path: one scalar allreduce detects the common steady-state case
    // where no body anywhere changed owner, and skips the O(np²)-byte
    // counts exchange entirely. In the adaptive pipeline most drift
    // migrations move nothing, so this collective dominates Decomp cost.
    let moving: u64 = out.iter().map(|v| v.len() as u64).sum();
    if comm.allreduce_sum_u64(moving) == 0 {
        keep.sort_unstable_by_key(|b| (b.key, b.id));
        trace.add_traffic(&comm.stats().since(&wire_before));
        return keep;
    }

    // Everyone learns every pair's batch size: receives become a fixed
    // (source-ascending) schedule instead of an arrival race.
    let my_counts: Vec<u64> = out.iter().map(|v| v.len() as u64).collect();
    let counts: Vec<Vec<u64>> = comm.allgather(my_counts);
    for (dst, batch) in out.into_iter().enumerate() {
        if !batch.is_empty() {
            comm.send(dst as u32, TAG_MIGRATE, &batch);
        }
    }
    let mut migrated_bodies = 0u64;
    let mut migrated_bytes = 0u64;
    for src in 0..np as u32 {
        if src == rank || counts[src as usize][rank as usize] == 0 {
            continue;
        }
        let batch: Vec<Body<C>> = comm.recv(src, TAG_MIGRATE);
        debug_assert_eq!(batch.len() as u64, counts[src as usize][rank as usize]);
        migrated_bodies += batch.len() as u64;
        migrated_bytes += batch.wire_size() as u64;
        keep.extend(batch);
    }
    keep.sort_unstable_by_key(|b| (b.key, b.id));
    trace.add(Counter::MigratedBodies, migrated_bodies);
    trace.add(Counter::MigratedBytes, migrated_bytes);
    trace.add_traffic(&comm.stats().since(&wire_before));
    keep
}

/// Outcome of one [`rebalance_traced`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rebalance {
    /// The skew trigger fired and the interval cuts moved.
    pub repartitioned: bool,
    /// Measured max/mean cost skew (milli-units) *before* any repartition,
    /// after the drift migration. 1000 = perfectly balanced.
    pub skew_milli: u64,
}

/// Incremental feedback-driven repartition (collective), recording one
/// [`Phase::Decomp`] span.
///
/// 1. **Drift diff** — migrate bodies whose (re-keyed) positions left
///    their owner's interval, so ownership matches `intervals` again.
/// 2. **Skew check** — three scalar allreduces (cost sum, per-rank max,
///    single-body max) compute the max/mean skew and the granularity
///    floor `1 + max_body/mean` in milli-units; the full per-rank totals
///    vector is *not* gathered here.
/// 3. At `1000·skew ≤ threshold_milli·floor`: reuse `intervals`
///    **verbatim** (the returned struct is bitwise the input). Above:
///    allgather the totals (the cut-point search needs the vector), move
///    the cut points with [`cost_cut_bounds`] and migrate the minimal
///    diff, counting one [`Counter::RebalanceSteps`]. Comparing against
///    the achievable floor rather than an absolute skew keeps the loop
///    quiescent once it is within the threshold factor of the best any
///    contiguous cost-quantile split can do — repartitioning past that
///    point only churns bodies.
pub fn rebalance_traced<C: Wire + Copy + Send>(
    comm: &mut Comm,
    bodies: Vec<Body<C>>,
    intervals: KeyIntervals,
    threshold_milli: u32,
    trace: &mut Ledger,
) -> (Vec<Body<C>>, KeyIntervals, Rebalance) {
    trace.begin(Phase::Decomp);
    let mine = migrate_traced(comm, bodies, &intervals, trace);

    let wire_before = comm.stats();
    let np = comm.size() as usize;
    let local: u64 = mine.iter().map(body_cost).sum();
    // The trigger needs only global scalars (cost sum, per-rank max,
    // single-body max): three scalar allreduces instead of an
    // O(np²)-byte allgather every step.
    let total = comm.allreduce_sum_u64(local);
    let max = comm.allreduce(local, u64::max);
    let max_body = comm.allreduce(mine.iter().map(body_cost).max().unwrap_or(0), u64::max);
    let milli_of = |v: u64| -> u64 {
        if total == 0 {
            1000
        } else {
            (u128::from(v) * 1000 * np as u128 / u128::from(total)) as u64
        }
    };
    let skew_milli = milli_of(max);
    // Any contiguous cost-quantile chunk is bounded by mean + one body, so
    // no repartition can push the skew below ~1 + max_body/mean.
    let floor_milli = if total == 0 { 1000 } else { 1000 + milli_of(max_body) };

    let repartition =
        u128::from(skew_milli) * 1000 > u128::from(threshold_milli) * u128::from(floor_milli);
    let (mine, intervals) = if repartition {
        let totals: Vec<u64> = comm.allgather(local);
        let new_iv = cost_cut_bounds(comm, &mine, &totals);
        trace.add(Counter::RebalanceSteps, 1);
        trace.add_traffic(&comm.stats().since(&wire_before));
        let mine = migrate_traced(comm, mine, &new_iv, trace);
        (mine, new_iv)
    } else {
        trace.add_traffic(&comm.stats().since(&wire_before));
        (mine, intervals)
    };
    trace.end();
    (mine, intervals, Rebalance { repartitioned: repartition, skew_milli })
}

/// From-scratch decomposition at exact integer costs (collective): the
/// sample sort co-locates equal keys, then [`cost_cut_bounds`] +
/// [`migrate_traced`] land on the exact cost quantiles. This is the
/// reference the incremental [`rebalance_traced`] must match bitwise at
/// the same costs (property suite), and the adaptive pipeline's cold
/// start.
pub fn decompose_costed_traced<C: Wire + Copy + Send>(
    comm: &mut Comm,
    bodies: Vec<Body<C>>,
    oversample: usize,
    trace: &mut Ledger,
) -> (Vec<Body<C>>, KeyIntervals) {
    let (mine, _) = decompose_traced(comm, bodies, oversample, trace);
    trace.begin(Phase::Decomp);
    let wire_before = comm.stats();
    let local: u64 = mine.iter().map(body_cost).sum();
    let totals: Vec<u64> = comm.allgather(local);
    let iv = cost_cut_bounds(comm, &mine, &totals);
    trace.add_traffic(&comm.stats().since(&wire_before));
    let mine = migrate_traced(comm, mine, &iv, trace);
    trace.end();
    (mine, iv)
}

#[cfg(test)]
mod tests {
    use hot_comm::RunConfig;
    use super::*;
    use hot_base::Aabb;
    use rand::{Rng, SeedableRng};

    fn make_bodies(rank: u32, n: usize, seed: u64) -> Vec<Body<f64>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + rank as u64);
        (0..n)
            .map(|i| {
                let pos = Vec3::new(rng.gen(), rng.gen(), rng.gen());
                Body {
                    key: Key::from_point(pos, &Aabb::unit()),
                    pos,
                    charge: 1.0,
                    work: 1.0,
                    id: rank as u64 * 1_000_000 + i as u64,
                }
            })
            .collect()
    }

    #[test]
    fn body_wire_roundtrip() {
        let b = Body { key: Key(123), pos: Vec3::new(1.0, 2.0, 3.0), charge: 4.5f64, work: 2.0, id: 99 };
        let back: Body<f64> = hot_comm::from_bytes(hot_comm::to_bytes(&b));
        assert_eq!(back, b);
    }

    #[test]
    fn interval_owner_logic() {
        let iv = KeyIntervals { bounds: vec![0, 100, 200, u64::MAX] };
        assert_eq!(iv.np(), 3);
        assert_eq!(iv.owner(Key(0)), 0);
        assert_eq!(iv.owner(Key(99)), 0);
        assert_eq!(iv.owner(Key(100)), 1);
        assert_eq!(iv.owner(Key(199)), 1);
        assert_eq!(iv.owner(Key(200)), 2);
        assert_eq!(iv.owner(Key(u64::MAX)), 2, "max key belongs to last rank");
        assert!(iv.owns(1, Key(150)));
        assert!(!iv.owns(0, Key(150)));
    }

    #[test]
    fn decompose_preserves_and_sorts() {
        for np in [1u32, 2, 4, 7] {
            let per_rank = 500;
            let out = RunConfig::builder().np(np).run(move |c| {
                let bodies = make_bodies(c.rank(), per_rank, 42);
                let (mine, iv) = decompose(c, bodies, 32);
                // Sorted and all owned by me.
                assert!(mine.windows(2).all(|w| w[0].key <= w[1].key));
                for b in &mine {
                    assert!(iv.owns(c.rank(), b.key), "body {b:?} not owned");
                }
                (mine.len(), mine.iter().map(|b| b.id).collect::<Vec<_>>(), iv)
            });
            // Global conservation of bodies.
            let total: usize = out.results.iter().map(|(n, _, _)| n).sum();
            assert_eq!(total, np as usize * per_rank, "np={np}");
            let mut all_ids: Vec<u64> =
                out.results.iter().flat_map(|(_, ids, _)| ids.clone()).collect();
            all_ids.sort_unstable();
            all_ids.dedup();
            assert_eq!(all_ids.len(), np as usize * per_rank, "ids lost or duplicated");
            // All ranks agree on the intervals.
            let iv0 = &out.results[0].2;
            for (_, _, iv) in &out.results {
                assert_eq!(iv, iv0);
            }
        }
    }

    #[test]
    fn uniform_work_is_balanced() {
        let np = 4u32;
        let per_rank = 2000;
        let out = RunConfig::builder().np(np).run(move |c| {
            let bodies = make_bodies(c.rank(), per_rank, 7);
            let (mine, _) = decompose(c, bodies, 64);
            mine.len()
        });
        let avg = per_rank as f64;
        for &n in &out.results {
            assert!(
                (n as f64) > avg * 0.7 && (n as f64) < avg * 1.3,
                "imbalanced: {n} vs avg {avg}: {:?}",
                out.results
            );
        }
    }

    #[test]
    fn heavy_work_region_gets_fewer_bodies() {
        // Bodies in the low-key octant carry 10x work. The rank(s) owning
        // that region should end up with substantially fewer bodies.
        let np = 4u32;
        let per_rank = 2000;
        let out = RunConfig::builder().np(np).run(move |c| {
            let mut bodies = make_bodies(c.rank(), per_rank, 3);
            for b in &mut bodies {
                // Octant 0 of the root = top 3 digit bits are 000.
                if (b.key.0 >> 60) & 7 == 0 {
                    b.work = 10.0;
                }
            }
            let (mine, _) = decompose(c, bodies, 64);
            let work: f64 = mine.iter().map(|b| b.work as f64).sum();
            (mine.len(), work)
        });
        // Work should be balanced...
        let works: Vec<f64> = out.results.iter().map(|&(_, w)| w).collect();
        let avg_w: f64 = works.iter().sum::<f64>() / np as f64;
        for &w in &works {
            assert!(w > avg_w * 0.6 && w < avg_w * 1.4, "work imbalance: {works:?}");
        }
        // ...which forces body-count imbalance.
        let counts: Vec<usize> = out.results.iter().map(|&(n, _)| n).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max as f64 > 1.5 * min as f64, "counts should skew: {counts:?}");
    }

    #[test]
    fn empty_ranks_tolerated() {
        // Rank 0 holds everything initially.
        let np = 3u32;
        let out = RunConfig::builder().np(np).run(|c| {
            let bodies =
                if c.rank() == 0 { make_bodies(0, 900, 5) } else { Vec::new() };
            let (mine, _) = decompose(c, bodies, 32);
            mine.len()
        });
        let total: usize = out.results.iter().sum();
        assert_eq!(total, 900);
        // Everyone got a decent share.
        for &n in &out.results {
            assert!(n > 100, "rank starved: {:?}", out.results);
        }
    }

    #[test]
    fn cost_model_blend_is_clamped_and_exact() {
        let m = CostModel::new(128);
        assert_eq!(m.blend(100, 200), 150);
        assert_eq!(m.blend(0, 0), 1, "cost floor");
        assert_eq!(m.blend(u64::MAX, u64::MAX), COST_CAP, "cost cap");
        // smoothing 0 takes the measurement, 256 keeps the previous cost.
        assert_eq!(CostModel::new(0).blend(7, 999), 999);
        assert_eq!(CostModel::new(256).blend(7, 999), 7);
        assert_eq!(CostModel::new(999).smoothing, 256, "smoothing clamps");
        // Every blend result survives the f32 round-trip exactly.
        for &(p, me) in &[(1u64, COST_CAP), (12345, 678), (COST_CAP, 1)] {
            let c = m.blend(p, me);
            assert_eq!(c as f32 as u64, c);
        }
    }

    fn costed_bodies(rank: u32, n: usize, seed: u64) -> Vec<Body<f64>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + rank as u64);
        let mut bodies = make_bodies(rank, n, seed);
        for b in &mut bodies {
            b.work = rng.gen_range(1u32..5000) as f32;
        }
        bodies
    }

    #[test]
    fn distributed_cost_cuts_match_the_serial_reference() {
        for np in [1u32, 2, 3, 5] {
            let out = RunConfig::builder().np(np).run(move |c| {
                let bodies = costed_bodies(c.rank(), 300, 11);
                // Co-locate equal keys first (precondition).
                let (mine, _) = decompose(c, bodies, 32);
                let local: u64 = mine.iter().map(body_cost).sum();
                let totals: Vec<u64> = c.allgather(local);
                let iv = cost_cut_bounds(c, &mine, &totals);
                let items: Vec<(u64, u64)> =
                    mine.iter().map(|b| (b.key.0, body_cost(b))).collect();
                (iv, c.allgather(items))
            });
            // Serial reference over the gathered global multiset.
            let global: Vec<(u64, u64)> = {
                let mut g: Vec<(u64, u64)> =
                    out.results[0].1.iter().flatten().copied().collect();
                g.sort_unstable();
                g
            };
            let want = cost_cut_bounds_serial(&global, np as usize);
            for (iv, _) in &out.results {
                assert_eq!(iv.bounds, want, "np={np}");
            }
        }
    }

    #[test]
    fn migration_moves_only_the_diff() {
        let np = 4u32;
        let out = RunConfig::builder().np(np).run(move |c| {
            let bodies = costed_bodies(c.rank(), 400, 23);
            let (mine, iv) = decompose(c, bodies, 32);
            // Re-migrating to the same intervals is a no-op.
            let before: Vec<u64> = mine.iter().map(|b| b.id).collect();
            let mut trace = Ledger::scratch();
            let again = migrate_traced(c, mine, &iv, &mut trace);
            let moved = trace.totals().get(Counter::MigratedBodies);
            let mut after: Vec<u64> = again.iter().map(|b| b.id).collect();
            let mut sorted_before = before;
            sorted_before.sort_unstable();
            after.sort_unstable();
            assert_eq!(sorted_before, after, "no-op migration changed ownership");
            // Now shift every cut point and count what actually moves.
            let mut shifted = iv.clone();
            for b in &mut shifted.bounds[1..np as usize] {
                *b = b.saturating_add(1 << 58);
            }
            let expect_moved: u64 =
                again.iter().filter(|b| shifted.owner(b.key) != c.rank()).count() as u64;
            let mut trace2 = Ledger::scratch();
            let moved_in: u64 = {
                let n0 = again.len() as u64;
                let out2 = migrate_traced(c, again, &shifted, &mut trace2);
                // arrivals = final − (initial − departures)
                out2.len() as u64 + expect_moved - n0
            };
            assert_eq!(moved, 0, "no-op migration shipped bodies");
            assert_eq!(
                trace2.totals().get(Counter::MigratedBodies),
                moved_in,
                "migration counter disagrees with arrivals"
            );
            trace2.totals().get(Counter::MigratedBodies)
        });
        // At least one rank must actually have received something.
        assert!(out.results.iter().sum::<u64>() > 0, "shifted cuts moved nothing");
    }

    #[test]
    fn rebalance_below_threshold_reuses_intervals_verbatim() {
        let np = 3u32;
        let out = RunConfig::builder().np(np).run(move |c| {
            let bodies = make_bodies(c.rank(), 500, 31); // uniform work = 1
            let (mine, iv) = decompose(c, bodies, 64);
            let mut trace = Ledger::scratch();
            let (mine2, iv2, r) =
                rebalance_traced(c, mine, iv.clone(), 2000, &mut trace);
            assert!(!r.repartitioned, "uniform costs must not trigger at 2x threshold");
            assert_eq!(iv2, iv, "intervals must be reused verbatim");
            assert!(r.skew_milli >= 1000, "max/mean is at least 1");
            assert_eq!(trace.totals().get(Counter::RebalanceSteps), 0);
            mine2.len()
        });
        assert_eq!(out.results.iter().sum::<usize>(), 3 * 500);
    }

    #[test]
    fn incremental_rebalance_matches_from_scratch_bitwise() {
        let np = 4u32;
        let run_incremental = RunConfig::builder().np(np).run(move |c| {
            let bodies = costed_bodies(c.rank(), 350, 47);
            // Start from a deliberately bad partition: equal key ranges.
            let step = u64::MAX / np as u64;
            let iv = KeyIntervals {
                bounds: (0..np as u64)
                    .map(|r| r * step)
                    .chain(std::iter::once(u64::MAX))
                    .collect(),
            };
            let mut trace = Ledger::scratch();
            // Threshold 0 always fires.
            let (mine, iv2, r) = rebalance_traced(c, bodies, iv, 0, &mut trace);
            assert!(r.repartitioned);
            let ids: Vec<(u64, u64)> = mine.iter().map(|b| (b.key.0, b.id)).collect();
            (ids, iv2)
        });
        let run_scratch = RunConfig::builder().np(np).run(move |c| {
            let bodies = costed_bodies(c.rank(), 350, 47);
            let (mine, iv) =
                decompose_costed_traced(c, bodies, 32, &mut Ledger::scratch());
            let ids: Vec<(u64, u64)> = mine.iter().map(|b| (b.key.0, b.id)).collect();
            (ids, iv)
        });
        assert_eq!(run_incremental.results, run_scratch.results);
    }

    #[test]
    fn all_identical_keys_degenerate() {
        // Every body at the same point: splitters collapse; one rank owns
        // them all, nothing is lost, nobody deadlocks.
        let np = 3u32;
        let out = RunConfig::builder().np(np).run(|c| {
            let bodies: Vec<Body<f64>> = (0..100)
                .map(|i| Body {
                    key: Key::from_point(Vec3::splat(0.5), &Aabb::unit()),
                    pos: Vec3::splat(0.5),
                    charge: 1.0,
                    work: 1.0,
                    id: c.rank() as u64 * 1000 + i,
                })
                .collect();
            let (mine, _) = decompose(c, bodies, 16);
            mine.len()
        });
        let total: usize = out.results.iter().sum();
        assert_eq!(total, 300);
    }
}
