//! Small encode/decode helpers shared by the tree's wire formats.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hot_base::Vec3;

/// Append a `Vec3` (3 × little-endian f64).
#[inline]
pub fn put_vec3(buf: &mut BytesMut, v: Vec3) {
    buf.put_f64_le(v.x);
    buf.put_f64_le(v.y);
    buf.put_f64_le(v.z);
}

/// Read a `Vec3`.
#[inline]
pub fn get_vec3(buf: &mut Bytes) -> Vec3 {
    let x = buf.get_f64_le();
    let y = buf.get_f64_le();
    let z = buf.get_f64_le();
    Vec3::new(x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = BytesMut::new();
        put_vec3(&mut buf, Vec3::new(1.5, -2.5, 1e-300));
        let mut b = buf.freeze();
        assert_eq!(get_vec3(&mut b), Vec3::new(1.5, -2.5, 1e-300));
        assert!(b.is_empty());
    }
}
