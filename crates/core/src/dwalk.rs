//! Distributed tree traversal with latency hiding.
//!
//! The paper: *"An efficient mechanism for latency hiding in the tree
//! traversal phase of the algorithm is critical. To avoid stalls during
//! non-local data access, we effectively do explicit 'context switching'."*
//!
//! Each sink group carries an independent walk (an explicit stack of node
//! references) that records its accepted sources into the group's
//! [`InteractionList`] — the distributed flavour of the list-build stage.
//! When a walk needs data that is not resident — the children of a remote
//! cell, or the bodies of a remote leaf — it posts a request through the
//! [`Abm`] active-message layer and is *parked*; the rank switches to
//! another group's walk instead of stalling. Replies install the fetched
//! cells into the global view (so later walks hit them for free) and
//! re-activate the parked walks. When a walk completes, its finished list
//! is handed to the rank's [`ListConsumer`] (the apply stage) and its
//! interaction counts are pinned against the list lengths. The whole
//! exchange runs to quiescence with ABM's termination protocol, with every
//! rank also serving its peers' fetch requests from its local tree
//! throughout.

use crate::dtree::{CellRecord, DChildren, DistTree};
use crate::ilist::{InteractionList, ListConsumer};
use crate::mac::Mac;
use crate::moments::Moments;
use crate::walk::WalkStats;
use bytes::Bytes;
use hot_base::Vec3;
use hot_comm::{from_bytes, Abm, Comm};
use std::collections::HashMap; // hot-lint: allow(determinism): see `parked`

/// Message kinds on the ABM channel.
const K_REQ_CHILDREN: u16 = 1;
const K_REP_CHILDREN: u16 = 2;
const K_REQ_BODIES: u16 = 3;
const K_REP_BODIES: u16 = 4;

/// A reference into the hybrid tree: either a local cell or a global node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ref {
    /// Index into `DistTree::local.cells`.
    Local(u32),
    /// Index into `DistTree::nodes`.
    Node(u32),
}

/// One sink group's suspended traversal: its stack, the interaction list
/// it is building, and its own interaction counts (pinned against the
/// list when the walk completes).
struct GroupWalk<M: Moments> {
    /// Index of the group cell in the local tree.
    gi: u32,
    /// Remaining node references to process.
    stack: Vec<Ref>,
    /// The group's interaction list under construction.
    list: InteractionList<M>,
    /// This walk's interaction counts so far.
    stats: WalkStats,
}

/// Why a walk parked.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Want {
    Children(u64),
    Bodies(u64),
}

/// Statistics of one rank's distributed walk.
#[derive(Clone, Copy, Debug, Default)]
pub struct DwalkStats {
    /// Interaction counts (paper units), including the list-entry counts.
    pub walk: WalkStats,
    /// Cell-fetch requests sent.
    pub cell_requests: u64,
    /// Body-fetch requests sent.
    pub body_requests: u64,
    /// Times a walk parked (the "context switches"). Schedule-dependent:
    /// how often a walk blocks depends on reply arrival timing.
    pub parks: u64,
    /// ABM session counters. `posted`/`delivered`/bytes are logical and
    /// schedule-independent; `batches_sent` is not.
    pub abm: hot_comm::AbmStats,
}

/// Run the distributed traversal. Collective: every rank calls with its
/// [`DistTree`] and its own list consumer (the apply stage); returns when
/// the machine-wide exchange is quiescent.
///
/// `group_size` is the sink-group particle bound (see
/// [`crate::walk::default_group_size`]).
pub fn dwalk<M: Moments, C: ListConsumer<M>>(
    comm: &mut Comm,
    dt: &mut DistTree<M>,
    mac: &Mac,
    consumer: &mut C,
    group_size: usize,
) -> DwalkStats {
    dwalk_traced(comm, dt, mac, consumer, group_size, &mut hot_trace::Ledger::scratch())
}

/// [`dwalk`], recording a `Walk` span into `trace`.
///
/// The walk phase must stay bitwise identical across message schedules, so
/// the span records only *logical* quantities: cells opened, list entries,
/// the number of cell/body requests (exactly one per distinct needed key,
/// thanks to the parked-walk dedup), and the ABM layer's posted/delivered
/// message and byte counts. Raw `TrafficStats` deltas are deliberately
/// **not** folded in here: the number of termination-detection rounds —
/// and therefore the allreduce traffic — depends on arrival interleaving,
/// as do batch counts and `parks`.
pub fn dwalk_traced<M: Moments, C: ListConsumer<M>>(
    comm: &mut Comm,
    dt: &mut DistTree<M>,
    mac: &Mac,
    consumer: &mut C,
    group_size: usize,
    trace: &mut hot_trace::Ledger,
) -> DwalkStats {
    trace.begin(hot_trace::Phase::Walk);
    let stats = dwalk_inner(comm, dt, mac, consumer, group_size);
    stats.walk.record_traversal(trace);
    trace.add(hot_trace::Counter::CellRequests, stats.cell_requests);
    trace.add(hot_trace::Counter::BodyRequests, stats.body_requests);
    trace.add(hot_trace::Counter::MsgsSent, stats.abm.posted);
    trace.add(hot_trace::Counter::BytesSent, stats.abm.bytes_posted);
    trace.add(hot_trace::Counter::MsgsRecvd, stats.abm.delivered);
    trace.add(hot_trace::Counter::BytesRecvd, stats.abm.bytes_delivered);
    trace.end();
    stats
}

fn dwalk_inner<M: Moments, C: ListConsumer<M>>(
    comm: &mut Comm,
    dt: &mut DistTree<M>,
    mac: &Mac,
    consumer: &mut C,
    group_size: usize,
) -> DwalkStats {
    let mut stats = DwalkStats::default();
    let root = Ref::Node(dt.root);
    let mut active: Vec<GroupWalk<M>> = dt
        .local
        .groups(group_size)
        .into_iter()
        .map(|gi| GroupWalk {
            gi,
            stack: vec![root],
            list: InteractionList::new(),
            stats: WalkStats::default(),
        })
        .collect();
    // The only iteration over this map is the pending-count reduction
    // below, an order-independent exact u64 sum; walks are otherwise
    // accessed per-key when their reply arrives, so hash order cannot leak
    // into results. hot-lint: allow(determinism)
    let mut parked: HashMap<Want, Vec<GroupWalk<M>>> = HashMap::new();
    let mut abm = Abm::new(comm, 4096);

    // Main service loop, structured as globally synchronized rounds so
    // that termination detection can use blocking collectives without
    // deadlock: a rank must never block in the consensus while a peer
    // still needs its data to make progress, so every rank (1) drains its
    // runnable walks, (2) serves/absorbs every message available right
    // now, and only then (3) joins the round's count exchange. Parked
    // walks simply wait out the round. The exchange terminates when the
    // machine-wide (posted, delivered, runnable+parked) triple is stable
    // at (n, n, 0) for two consecutive rounds (double-count termination
    // detection, as in the ABM layer).
    let mut prev = (u64::MAX, u64::MAX, u64::MAX);
    loop {
        loop {
            while let Some(mut w) = active.pop() {
                match run_walk(dt, mac, &mut w) {
                    WalkOutcome::Done => finish_walk(dt, consumer, w, &mut stats),
                    WalkOutcome::Park { want, owner } => {
                        stats.parks += 1;
                        if !parked.contains_key(&want) {
                            match want {
                                Want::Children(key) => {
                                    abm.post(owner, K_REQ_CHILDREN, &key);
                                    stats.cell_requests += 1;
                                }
                                Want::Bodies(key) => {
                                    abm.post(owner, K_REQ_BODIES, &key);
                                    stats.body_requests += 1;
                                }
                            }
                        }
                        parked.entry(want).or_default().push(w);
                    }
                }
            }
            abm.flush_all();
            let mut handler = make_handler(dt, &mut active, &mut parked);
            let handled = abm.poll(&mut handler);
            drop(handler);
            if active.is_empty() && handled == 0 {
                break;
            }
        }
        let pending = parked.values().map(|v| v.len() as u64).sum::<u64>();
        let s = abm.stats();
        let totals = abm
            .comm_mut()
            .allreduce((s.posted, s.delivered, pending), |a, b| {
                (a.0 + b.0, a.1 + b.1, a.2 + b.2)
            });
        if totals.0 == totals.1 && totals.2 == 0 && totals == prev {
            break;
        }
        prev = totals;
    }
    debug_assert!(active.is_empty() && parked.is_empty());
    stats.abm = abm.stats();
    stats
}

/// Apply a completed walk's list (the distributed list-apply stage): pin
/// the walk's incremental pair accounting against the finished list's
/// closed form, fold its counts into the rank totals, and hand the list
/// to the consumer.
fn finish_walk<M: Moments, C: ListConsumer<M>>(
    dt: &DistTree<M>,
    consumer: &mut C,
    mut w: GroupWalk<M>,
    stats: &mut DwalkStats,
) {
    let sinks = dt.local.cells[w.gi as usize].span();
    let (pp, pc) = w.list.expected_stats(&sinks);
    assert_eq!(
        (w.stats.pp, w.stats.pc),
        (pp, pc),
        "dwalk stats for group {} disagree with its interaction list",
        w.gi
    );
    w.stats.listed_pp = w.list.pp_entries();
    w.stats.listed_pc = w.list.pc_entries();
    stats.walk.merge(&w.stats);
    consumer.consume(&dt.local.pos, &dt.local.charge, sinks, &w.list);
}

enum WalkOutcome {
    Done,
    /// The walk blocked on non-resident data; the caller posts the fetch
    /// (once per distinct key) and parks the walk under `want`.
    Park { want: Want, owner: u32 },
}

/// Drive one walk until it completes or blocks on non-resident data,
/// recording accepted sources into the walk's own interaction list.
fn run_walk<M: Moments>(dt: &DistTree<M>, mac: &Mac, w: &mut GroupWalk<M>) -> WalkOutcome {
    let g = &dt.local.cells[w.gi as usize];
    let gc = g.center;
    let gr = g.bmax;
    let sinks = g.span();
    let gn = g.n as u64;

    while let Some(r) = w.stack.pop() {
        match r {
            Ref::Local(ci) => {
                if ci == w.gi {
                    w.list.push_pp(
                        &dt.local.pos[sinks.clone()],
                        &dt.local.charge[sinks.clone()],
                        Some(sinks.start),
                    );
                    w.stats.pp += gn * (gn - 1);
                    continue;
                }
                let c = &dt.local.cells[ci as usize];
                if c.n == 0 {
                    continue;
                }
                if mac.accepts(c, gc, gr) {
                    w.list.push_pc(c.center, &c.moments);
                    w.stats.pc += gn;
                } else if c.is_leaf() {
                    w.list.push_pp(
                        &dt.local.pos[c.span()],
                        &dt.local.charge[c.span()],
                        Some(c.first as usize),
                    );
                    w.stats.pp += gn * c.n as u64;
                } else {
                    w.stats.opened += 1;
                    w.stack.extend(dt.local.children(c).map(|k| Ref::Local(k as u32)));
                }
            }
            Ref::Node(ni) => {
                let node = &dt.nodes[ni as usize];
                if node.n == 0 {
                    continue;
                }
                if mac.accepts_raw(node.center, node.bmax, node.moments.b2(), gc, gr) {
                    w.list.push_pc(node.center, &node.moments);
                    w.stats.pc += gn;
                    continue;
                }
                match &node.children {
                    DChildren::Nodes(kids) => {
                        w.stats.opened += 1;
                        w.stack.extend(kids.iter().map(|&k| Ref::Node(k)));
                    }
                    DChildren::LocalSubtree => {
                        // Graft into the local cell structure. Virtual
                        // branches (no resident cell) fall back to a direct
                        // span evaluation.
                        if let Some(ci) = dt.local.table.get(node.key) {
                            w.stack.push(Ref::Local(ci));
                        } else {
                            // Virtual branch: its particles live in a span
                            // of the local arrays (possibly aliasing the
                            // sink span — src_start lets the apply stage
                            // exclude self pairs). When the span *is* the
                            // sink span, count like the self-interaction
                            // case: gn·(len−1) pairs, not gn·len — the
                            // historical double-count this path had.
                            let span = dt.span_of(node.key);
                            if !span.is_empty() {
                                w.list.push_pp(
                                    &dt.local.pos[span.clone()],
                                    &dt.local.charge[span.clone()],
                                    Some(span.start),
                                );
                                let len = span.len() as u64;
                                w.stats.pp += if span == sinks {
                                    gn * (len - 1)
                                } else {
                                    gn * len
                                };
                            }
                        }
                    }
                    DChildren::RemoteLeaf => {
                        if let Some((bp, bq)) = dt.body_cache.get(&ni) {
                            w.list.push_pp(bp, bq, None);
                            w.stats.pp += gn * bp.len() as u64;
                        } else {
                            // Park: remember the blocking node by pushing it
                            // back; the resume path re-pops it with the
                            // cache filled.
                            w.stack.push(Ref::Node(ni));
                            return WalkOutcome::Park {
                                want: Want::Bodies(node.key.0),
                                owner: node.owner,
                            };
                        }
                    }
                    DChildren::RemoteUnfetched => {
                        w.stack.push(Ref::Node(ni));
                        return WalkOutcome::Park {
                            want: Want::Children(node.key.0),
                            owner: node.owner,
                        };
                    }
                }
            }
        }
    }
    WalkOutcome::Done
}

/// Build the ABM handler that serves peers and absorbs replies.
fn make_handler<'h, M: Moments>(
    dt: &'h mut DistTree<M>,
    active: &'h mut Vec<GroupWalk<M>>,
    // hot-lint: allow(determinism): per-key removal on reply, never iterated.
    parked: &'h mut HashMap<Want, Vec<GroupWalk<M>>>,
) -> impl FnMut(&mut Abm<'_>, u32, u16, Bytes) + 'h {
    move |ep, src, kind, payload| match kind {
        K_REQ_CHILDREN => {
            let key: u64 = from_bytes(payload);
            let records = dt
                .children_records(hot_morton::Key(key))
                .unwrap_or_default();
            ep.post(src, K_REP_CHILDREN, &(key, records));
        }
        K_REQ_BODIES => {
            let key: u64 = from_bytes(payload);
            let (pos, charge) =
                dt.bodies_of(hot_morton::Key(key)).unwrap_or_default();
            let pairs: Vec<(Vec3, M::Charge)> =
                pos.into_iter().zip(charge).collect();
            ep.post(src, K_REP_BODIES, &(key, pairs));
        }
        K_REP_CHILDREN => {
            let (key, records): (u64, Vec<CellRecord<M>>) = from_bytes(payload);
            dt.install_children(hot_morton::Key(key), &records);
            if let Some(walks) = parked.remove(&Want::Children(key)) {
                active.extend(walks);
            }
        }
        K_REP_BODIES => {
            let (key, pairs): (u64, Vec<(Vec3, M::Charge)>) = from_bytes(payload);
            let ni = dt
                .table
                .get(hot_morton::Key(key))
                // Protocol invariant: body replies match a prior request.
                // hot-lint: allow(unwrap-audit)
                .expect("body reply for unknown node");
            let mut pos = Vec::with_capacity(pairs.len());
            let mut charge = Vec::with_capacity(pairs.len());
            for (p, q) in pairs {
                pos.push(p);
                charge.push(q);
            }
            dt.body_cache.insert(ni, (pos, charge));
            if let Some(walks) = parked.remove(&Want::Bodies(key)) {
                active.extend(walks);
            }
        }
        other => panic!("unknown ABM message kind {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::{decompose, Body};
    use crate::ilist::Segment;
    use crate::moments::MassMoments;
    use crate::tree::Tree;
    use hot_base::Aabb;
    use hot_comm::World;
    use hot_morton::Key;
    use rand::{Rng, SeedableRng};
    use std::ops::Range;

    /// Mass-coverage consumer, distributed flavour: every source entry in
    /// a group's list (particles and cell masses alike) is "seen" once by
    /// each sink in the group.
    struct MassCoverage {
        seen: Vec<f64>,
    }

    impl ListConsumer<MassMoments> for MassCoverage {
        fn consume(
            &mut self,
            _pos: &[Vec3],
            _charge: &[f64],
            sinks: Range<usize>,
            list: &InteractionList<MassMoments>,
        ) {
            let mut total = 0.0;
            for seg in list.segments() {
                match seg {
                    Segment::Pp(v) => total += v.q.iter().sum::<f64>(),
                    Segment::Pc(c) => total += c.m.iter().map(|m| m.mass).sum::<f64>(),
                }
            }
            for i in sinks {
                self.seen[i] += total;
            }
        }
    }

    fn coverage_run(np: u32, n_per: usize, theta: f64, clustered: bool) {
        let out = World::run(np, move |c| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1234 + c.rank() as u64);
            let bodies: Vec<Body<f64>> = (0..n_per)
                .map(|i| {
                    let pos = if clustered && i % 2 == 0 {
                        Vec3::new(
                            0.1 + rng.gen::<f64>() * 0.01,
                            0.1 + rng.gen::<f64>() * 0.01,
                            0.1 + rng.gen::<f64>() * 0.01,
                        )
                    } else {
                        Vec3::new(rng.gen(), rng.gen(), rng.gen())
                    };
                    Body {
                        key: Key::from_point(pos, &Aabb::unit()),
                        pos,
                        charge: 1.0 + (i % 4) as f64 * 0.5,
                        work: 1.0,
                        id: c.rank() as u64 * 1_000_000 + i as u64,
                    }
                })
                .collect();
            let (mine, iv) = decompose(c, bodies, 32);
            let pos: Vec<Vec3> = mine.iter().map(|b| b.pos).collect();
            let q: Vec<f64> = mine.iter().map(|b| b.charge).collect();
            let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &q, 8);
            let mut dt = DistTree::build(c, tree, iv);
            let total_mass = c.allreduce_sum_f64(q.iter().sum());
            let mut cov = MassCoverage { seen: vec![0.0; dt.local.n_particles()] };
            let stats = dwalk(c, &mut dt, &Mac::BarnesHut { theta }, &mut cov, 16);
            (cov.seen, total_mass, stats.walk.interactions(), stats.parks)
        });
        let mut total_parks = 0;
        for (rank, (seen, total_mass, inter, parks)) in out.results.iter().enumerate() {
            for (i, &s) in seen.iter().enumerate() {
                assert!(
                    (s - total_mass).abs() < 1e-9 * total_mass,
                    "np={np} rank={rank} sink={i}: saw {s} of {total_mass}"
                );
            }
            if seen.len() > 1 {
                assert!(*inter > 0);
            }
            total_parks += parks;
        }
        if np > 1 {
            // With several ranks the walks must actually have context
            // switched at least somewhere.
            assert!(total_parks > 0, "np={np}: no latency hiding exercised");
        }
    }

    #[test]
    fn coverage_single_rank() {
        coverage_run(1, 500, 0.7, false);
    }

    #[test]
    fn coverage_two_ranks() {
        coverage_run(2, 400, 0.7, false);
    }

    #[test]
    fn coverage_five_ranks() {
        coverage_run(5, 300, 0.6, false);
    }

    #[test]
    fn coverage_clustered() {
        coverage_run(4, 400, 0.8, true);
    }

    #[test]
    fn coverage_tight_mac() {
        // A very tight theta forces deep descent into remote trees and
        // plenty of body fetches.
        coverage_run(3, 200, 0.25, false);
    }

    /// The distributed walk must agree with a serial walk over the union of
    /// all particles — same MAC, same bucket — on the *interaction counts*
    /// seen per rank in aggregate (they partition the sinks).
    #[test]
    fn matches_serial_interaction_totals() {
        let np = 3u32;
        let n_total = 600usize;
        // Deterministic global particle set.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let all_pos: Vec<Vec3> =
            (0..n_total).map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen())).collect();
        let all_q = vec![1.0f64; n_total];

        // Serial reference (list-build only; the counts are all we need).
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &all_pos, &all_q, 8);
        let mut scratch = InteractionList::new();
        let mut serial_total = 0.0;
        for gi in tree.groups(16) {
            let s = crate::walk::walk_group_list(
                &tree,
                &Mac::BarnesHut { theta: 0.7 },
                gi,
                &mut scratch,
            );
            serial_total += s.interactions() as f64;
        }

        let pos_clone = all_pos.clone();
        let out = World::run(np, move |c| {
            let per = n_total / np as usize;
            let lo = c.rank() as usize * per;
            let hi = if c.rank() == np - 1 { n_total } else { lo + per };
            let bodies: Vec<Body<f64>> = (lo..hi)
                .map(|i| Body {
                    key: Key::from_point(pos_clone[i], &Aabb::unit()),
                    pos: pos_clone[i],
                    charge: 1.0,
                    work: 1.0,
                    id: i as u64,
                })
                .collect();
            let (mine, iv) = decompose(c, bodies, 32);
            let pos: Vec<Vec3> = mine.iter().map(|b| b.pos).collect();
            let q: Vec<f64> = mine.iter().map(|b| b.charge).collect();
            let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &q, 8);
            let mut dt = DistTree::build(c, tree, iv);
            let mut cov = MassCoverage { seen: vec![0.0; dt.local.n_particles()] };
            let stats = dwalk(c, &mut dt, &Mac::BarnesHut { theta: 0.7 }, &mut cov, 16);
            stats.walk.interactions()
        });
        let dist_total: u64 = out.results.iter().sum();
        // Not identical (the decomposition changes group shapes), but the
        // same order: within 40% of the serial count.
        let ratio = dist_total as f64 / serial_total;
        assert!(
            (0.6..1.67).contains(&ratio),
            "distributed {dist_total} vs serial {serial_total} (ratio {ratio})"
        );
    }

    /// Every rank's pair accounting must reconcile with its list-entry
    /// counts: interactions are the per-sink fan-out of the listed
    /// entries, minus exactly one self-pair per sink.
    #[test]
    fn listed_entries_reconcile_with_interactions() {
        let out = World::run(2, |c| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(77 + c.rank() as u64);
            let bodies: Vec<Body<f64>> = (0..300)
                .map(|i| {
                    let pos = Vec3::new(rng.gen(), rng.gen(), rng.gen());
                    Body {
                        key: Key::from_point(pos, &Aabb::unit()),
                        pos,
                        charge: 1.0,
                        work: 1.0,
                        id: c.rank() as u64 * 1_000_000 + i,
                    }
                })
                .collect();
            let (mine, iv) = decompose(c, bodies, 32);
            let pos: Vec<Vec3> = mine.iter().map(|b| b.pos).collect();
            let q: Vec<f64> = mine.iter().map(|b| b.charge).collect();
            let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &q, 8);
            let mut dt = DistTree::build(c, tree, iv);
            let mut cov = MassCoverage { seen: vec![0.0; dt.local.n_particles()] };
            let stats = dwalk(c, &mut dt, &Mac::BarnesHut { theta: 0.6 }, &mut cov, 16);
            stats.walk
        });
        for w in out.results {
            assert!(w.listed_pp > 0 && w.listed_pc > 0);
            // Fan-out bound: each listed entry is seen by at least one and
            // at most group_size sinks (self-pairs only ever subtract).
            assert!(w.pp >= w.listed_pp.saturating_sub(1));
            assert!(w.pp <= w.listed_pp * 16);
            assert!(w.pc >= w.listed_pc && w.pc <= w.listed_pc * 16);
        }
    }
}
