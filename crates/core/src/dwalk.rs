//! Distributed tree traversal with latency hiding.
//!
//! The paper: *"An efficient mechanism for latency hiding in the tree
//! traversal phase of the algorithm is critical. To avoid stalls during
//! non-local data access, we effectively do explicit 'context switching'."*
//!
//! Each sink group carries an independent walk (an explicit stack of node
//! references) that records its accepted sources into the group's
//! [`InteractionList`] — the distributed flavour of the list-build stage.
//! When a walk needs data that is not resident — the children of a remote
//! cell, or the bodies of a remote leaf — it is *parked* and the rank
//! switches to another group's walk instead of stalling. The default
//! pipeline ([`WalkConfig`]) then hides the network latency three ways:
//!
//! * **Request coalescing** — parked wants are gathered per *round* and
//!   every distinct key wanted from one owner goes out in a single
//!   multi-key [`KeyBatchRequest`] message, with replies batched the same
//!   way. Rounds are globally synchronized: parked walks resume only at a
//!   machine-wide quiescent point (every outstanding request answered),
//!   which makes the per-round request sets — and therefore every logical
//!   message and byte count — a pure function of the walk, independent of
//!   message schedules.
//! * **Speculative subtree prefetch** — when serving a children request
//!   the owner piggybacks descendant cell records ([`WalkConfig`]
//!   `prefetch_levels` deep, within `prefetch_budget` wire bytes) onto the
//!   reply, so a descent that will open the child anyway saves a full
//!   round-trip. Prefetched cells install into the [`DistTree`] cache
//!   exactly as if requested; hits and wasted bytes are counted.
//! * **Overlapped apply** — completed walks enqueue their finished lists
//!   (after pinning interaction counts) and the service loop hands them to
//!   the rank's [`ListConsumer`] only when no messages are pollable, so
//!   local force arithmetic fills the latency window. The apply order is
//!   the deterministic walk-completion order, and sink groups are
//!   disjoint, so accelerations stay bitwise identical.
//!
//! Setting `coalesce: false` selects the original blocking pipeline (one
//! message per key, replies reactivate immediately, lists applied inline)
//! — kept as the measured baseline for `exp_latency`. Both pipelines
//! produce bitwise-identical interaction lists, and therefore forces: a
//! parked walk resumes exactly where it stopped (the blocking node is
//! pushed back and re-popped), so each group's list is written in the same
//! traversal order no matter when its data arrived. The whole exchange
//! runs to quiescence with ABM's termination protocol, every rank serving
//! its peers' fetch requests from its local tree throughout.

use crate::dtree::{CellRecord, DChildren, DistTree};
use crate::ilist::{InteractionList, ListConsumer};
use crate::mac::Mac;
use crate::moments::Moments;
use crate::walk::WalkStats;
use bytes::Bytes;
use hot_base::Vec3;
use hot_comm::{from_bytes, Abm, Comm, KeyBatchRequest, Wire};
use hot_morton::Key;
use std::collections::{BTreeMap, VecDeque};

/// Message kinds on the ABM channel. Kinds 1–4 are the blocking baseline's
/// per-key protocol; kinds 5–7 carry the coalesced pipeline.
const K_REQ_CHILDREN: u16 = 1;
const K_REP_CHILDREN: u16 = 2;
const K_REQ_BODIES: u16 = 3;
const K_REP_BODIES: u16 = 4;
/// One multi-key request per (requester, owner) pair per round.
const K_REQ_BATCH: u16 = 5;
/// Batched children replies: `Vec<(parent key, child records)>`, parents
/// always preceding their descendants so installs succeed in order.
const K_REP_CELL_BATCH: u16 = 6;
/// Batched body replies: `Vec<(leaf key, bodies)>`.
const K_REP_BODY_BATCH: u16 = 7;

/// Tuning knobs of the latency-hiding walk pipeline.
///
/// Lives here (and in `DistOptions`) rather than in the serial
/// `TreecodeOptions`: these knobs only exist for the distributed walk, and
/// the cosmology checkpoint format encodes `TreecodeOptions` on disk.
///
/// Every setting changes only *when* data moves, never *what* the walk
/// computes: forces and interaction counts are bitwise identical across
/// all configurations (pinned by tests and `exp_latency`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkConfig {
    /// ABM physical batch capacity in bytes (flush threshold), which also
    /// bounds the reply chunk size. The default is the knee of the
    /// `exp_latency` capacity sweep — the smallest capacity whose modeled
    /// wire time on Loki is within 10% of the asymptote (4 KiB: 65.5 ms vs
    /// 62.3 ms at 64 KiB for N = 32768/np = 8); buffering more only delays
    /// the first batch and fattens reply chunks.
    pub abm_batch: usize,
    /// Coalesce parked wants into per-owner multi-key requests issued in
    /// globally synchronized rounds. `false` selects the blocking per-key
    /// baseline (which also disables prefetch and overlapped apply).
    pub coalesce: bool,
    /// Levels of descendants an owner piggybacks onto a children reply
    /// (0 disables prefetch).
    pub prefetch_levels: u32,
    /// Byte budget for speculative records per served request message.
    pub prefetch_budget: usize,
    /// Apply finished interaction lists in poll-idle windows instead of
    /// inline at walk completion.
    pub overlap_apply: bool,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            abm_batch: 4096,
            coalesce: true,
            prefetch_levels: 1,
            prefetch_budget: 8192,
            overlap_apply: true,
        }
    }
}

impl WalkConfig {
    /// The pre-coalescing pipeline: one message per key, immediate
    /// reactivation, inline apply. The measured baseline in `exp_latency`.
    pub fn blocking() -> Self {
        WalkConfig {
            coalesce: false,
            prefetch_levels: 0,
            prefetch_budget: 0,
            overlap_apply: false,
            ..WalkConfig::default()
        }
    }

    // Per-field builders off `Default` (or `blocking()`), matching the
    // `DistOptions` / `TreecodeOptions` / `FaultConfig` idiom.

    /// Set the ABM batch capacity (flush threshold) in bytes.
    #[must_use]
    pub fn with_abm_batch(mut self, bytes: usize) -> Self {
        self.abm_batch = bytes;
        self
    }

    /// Enable or disable coalesced multi-key request rounds.
    #[must_use]
    pub fn with_coalesce(mut self, on: bool) -> Self {
        self.coalesce = on;
        self
    }

    /// Set prefetch depth (levels piggybacked per reply; 0 disables) and
    /// the speculative-record byte budget per served request.
    #[must_use]
    pub fn with_prefetch(mut self, levels: u32, budget: usize) -> Self {
        self.prefetch_levels = levels;
        self.prefetch_budget = budget;
        self
    }

    /// Apply finished interaction lists in poll-idle windows instead of
    /// inline at walk completion.
    #[must_use]
    pub fn with_overlap_apply(mut self, on: bool) -> Self {
        self.overlap_apply = on;
        self
    }
}

/// A reference into the hybrid tree: either a local cell or a global node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ref {
    /// Index into `DistTree::local.cells`.
    Local(u32),
    /// Index into `DistTree::nodes`.
    Node(u32),
}

/// One sink group's suspended traversal: its stack, the interaction list
/// it is building, and its own interaction counts (pinned against the
/// list when the walk completes).
struct GroupWalk<M: Moments> {
    /// Index of the group cell in the local tree.
    gi: u32,
    /// Remaining node references to process.
    stack: Vec<Ref>,
    /// The group's interaction list under construction.
    list: InteractionList<M>,
    /// This walk's interaction counts so far.
    stats: WalkStats,
}

/// Why a walk parked. `Ord` so parked walks live in a `BTreeMap` and
/// round-boundary reactivation happens in a deterministic order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Want {
    Children(u64),
    Bodies(u64),
}

/// Statistics of one rank's distributed walk.
#[derive(Clone, Debug, Default)]
pub struct DwalkStats {
    /// Interaction counts (paper units), including the list-entry counts.
    pub walk: WalkStats,
    /// Cells opened per sink group, as `(group cell index, opened)` sorted
    /// by group index. Each group's walk — and so its opened count — is a
    /// pure function of the tree (schedule-independent); only the
    /// *completion* order varies, which the sort erases. This is the
    /// traversal-cost half of the adaptive decomposition's feedback (the
    /// interaction half rides in the per-sink `work` tally).
    pub group_costs: Vec<(u32, u64)>,
    /// Distinct cell-children keys requested.
    pub cell_requests: u64,
    /// Distinct leaf-body keys requested.
    pub body_requests: u64,
    /// Times a walk parked (the "context switches"). Schedule-dependent in
    /// blocking mode: how often a walk blocks depends on reply timing.
    pub parks: u64,
    /// Coalesced multi-key request messages sent (≤ one per owner per
    /// round). In blocking mode this counts per-key request messages, so
    /// it equals `cell_requests + body_requests`.
    pub request_msgs: u64,
    /// Request rounds this rank participated in with at least one request
    /// of its own (coalesced mode only).
    pub rounds: u64,
    /// Cells installed speculatively from piggybacked reply records.
    pub prefetched_cells: u64,
    /// Wire bytes of speculatively installed records.
    pub prefetched_bytes: u64,
    /// Prefetched parents the walk later opened (round-trips saved).
    pub prefetch_hits: u64,
    /// Prefetched record bytes never opened by the walk.
    pub prefetch_wasted_bytes: u64,
    /// ABM session counters. `posted`/`delivered`/bytes are logical and
    /// schedule-independent; `batches_sent` is not.
    pub abm: hot_comm::AbmStats,
}

/// Run the distributed traversal with the default [`WalkConfig`].
/// Collective: every rank calls with its [`DistTree`] and its own list
/// consumer (the apply stage); returns when the machine-wide exchange is
/// quiescent.
///
/// `group_size` is the sink-group particle bound (see
/// [`crate::walk::default_group_size`]).
pub fn dwalk<M: Moments, C: ListConsumer<M>>(
    comm: &mut Comm,
    dt: &mut DistTree<M>,
    mac: &Mac,
    consumer: &mut C,
    group_size: usize,
) -> DwalkStats {
    dwalk_with(comm, dt, mac, consumer, group_size, &WalkConfig::default())
}

/// [`dwalk`] with an explicit pipeline configuration.
pub fn dwalk_with<M: Moments, C: ListConsumer<M>>(
    comm: &mut Comm,
    dt: &mut DistTree<M>,
    mac: &Mac,
    consumer: &mut C,
    group_size: usize,
    cfg: &WalkConfig,
) -> DwalkStats {
    dwalk_with_traced(comm, dt, mac, consumer, group_size, cfg, &mut hot_trace::Ledger::scratch())
}

/// [`dwalk`], recording a `Walk` span into `trace`.
pub fn dwalk_traced<M: Moments, C: ListConsumer<M>>(
    comm: &mut Comm,
    dt: &mut DistTree<M>,
    mac: &Mac,
    consumer: &mut C,
    group_size: usize,
    trace: &mut hot_trace::Ledger,
) -> DwalkStats {
    dwalk_with_traced(comm, dt, mac, consumer, group_size, &WalkConfig::default(), trace)
}

/// [`dwalk_with`], recording a `Walk` span into `trace`.
///
/// The walk phase must stay bitwise identical across message schedules, so
/// the span records only *logical* quantities: cells opened, list entries,
/// the number of distinct cell/body keys requested, the request rounds,
/// the prefetch ledger, and the ABM layer's posted/delivered message and
/// byte counts — all pure functions of the walk thanks to the round
/// structure (see [`WalkConfig`]). Raw `TrafficStats` deltas are
/// deliberately **not** folded in here: the number of
/// termination-detection rounds — and therefore the allreduce traffic —
/// depends on arrival interleaving, as do batch counts and `parks`.
#[allow(clippy::too_many_arguments)]
pub fn dwalk_with_traced<M: Moments, C: ListConsumer<M>>(
    comm: &mut Comm,
    dt: &mut DistTree<M>,
    mac: &Mac,
    consumer: &mut C,
    group_size: usize,
    cfg: &WalkConfig,
    trace: &mut hot_trace::Ledger,
) -> DwalkStats {
    trace.begin(hot_trace::Phase::Walk);
    let stats = if cfg.coalesce {
        dwalk_pipelined(comm, dt, mac, consumer, group_size, cfg)
    } else {
        dwalk_blocking(comm, dt, mac, consumer, group_size, cfg)
    };
    stats.walk.record_traversal(trace);
    trace.add(hot_trace::Counter::CellRequests, stats.cell_requests);
    trace.add(hot_trace::Counter::BodyRequests, stats.body_requests);
    trace.add(hot_trace::Counter::WalkRounds, stats.rounds);
    trace.add(hot_trace::Counter::PrefetchedCells, stats.prefetched_cells);
    trace.add(hot_trace::Counter::PrefetchHits, stats.prefetch_hits);
    trace.add(hot_trace::Counter::PrefetchWastedBytes, stats.prefetch_wasted_bytes);
    trace.add(hot_trace::Counter::MsgsSent, stats.abm.posted);
    trace.add(hot_trace::Counter::BytesSent, stats.abm.bytes_posted);
    trace.add(hot_trace::Counter::MsgsRecvd, stats.abm.delivered);
    trace.add(hot_trace::Counter::BytesRecvd, stats.abm.bytes_delivered);
    trace.end();
    stats
}

/// Initial per-group walks, all starting at the global root.
fn initial_walks<M: Moments>(dt: &DistTree<M>, group_size: usize) -> Vec<GroupWalk<M>> {
    let root = Ref::Node(dt.root);
    dt.local
        .groups(group_size)
        .into_iter()
        .map(|gi| GroupWalk {
            gi,
            stack: vec![root],
            list: InteractionList::new(),
            stats: WalkStats::default(),
        })
        .collect()
}

/// The coalesced, prefetching, overlapping pipeline (`cfg.coalesce`).
///
/// Structured as globally synchronized request rounds:
///
/// 1. drain every runnable walk, accumulating the round's newly wanted
///    keys per owner (deduplicated against walks already parked);
/// 2. post at most one [`KeyBatchRequest`] per owner;
/// 3. serve peers / absorb replies until no message is pollable, applying
///    one queued finished list per idle window (`overlap_apply`);
/// 4. join the round's count consensus. Parked walks reactivate **only**
///    when the allreduce proves every posted message machine-wide has been
///    delivered — i.e. all of this round's replies (including prefetches)
///    have landed everywhere.
///
/// Step 4 is the determinism keystone: because wakes happen only at
/// globally agreed quiescent points, which walks run in a round — and so
/// which keys each round requests, how many rounds there are, and every
/// logical message/byte/prefetch count — is a pure function of the walk
/// state, never of reply arrival timing. (The *number of allreduce
/// iterations* between rounds does vary with the schedule, which is why
/// termination traffic is excluded from the trace.) The exchange
/// terminates when the machine-wide (posted, delivered, parked) triple is
/// stable at (n, n, 0) for two consecutive iterations.
fn dwalk_pipelined<M: Moments, C: ListConsumer<M>>(
    comm: &mut Comm,
    dt: &mut DistTree<M>,
    mac: &Mac,
    consumer: &mut C,
    group_size: usize,
    cfg: &WalkConfig,
) -> DwalkStats {
    let mut stats = DwalkStats::default();
    let mut active = initial_walks(dt, group_size);
    let mut parked: BTreeMap<Want, Vec<GroupWalk<M>>> = BTreeMap::new();
    let mut finished: VecDeque<GroupWalk<M>> = VecDeque::new();
    let mut pf = PrefetchLedger::default();
    let mut abm = Abm::new(comm, cfg.abm_batch);

    let mut prev = (u64::MAX, u64::MAX, u64::MAX);
    loop {
        // (1) Drain runnable walks; gather the round's new wants per owner.
        let mut wants: BTreeMap<u32, (Vec<u64>, Vec<u64>)> = BTreeMap::new();
        while let Some(mut w) = active.pop() {
            match run_walk(dt, mac, &mut w, &mut pf) {
                WalkOutcome::Done => {
                    pin_walk(dt, &mut w, &mut stats);
                    if cfg.overlap_apply {
                        finished.push_back(w);
                    } else {
                        apply_walk(dt, consumer, &w);
                    }
                }
                WalkOutcome::Park { want, owner } => {
                    stats.parks += 1;
                    if !parked.contains_key(&want) {
                        let (cells, bodies) = wants.entry(owner).or_default();
                        match want {
                            Want::Children(key) => cells.push(key),
                            Want::Bodies(key) => bodies.push(key),
                        }
                    }
                    parked.entry(want).or_default().push(w);
                }
            }
        }
        // (2) One coalesced multi-key request per owner.
        if !wants.is_empty() {
            stats.rounds += 1;
        }
        for (owner, (cells, bodies)) in wants {
            stats.cell_requests += cells.len() as u64;
            stats.body_requests += bodies.len() as u64;
            stats.request_msgs += 1;
            abm.post(owner, K_REQ_BATCH, &KeyBatchRequest::new(cells, bodies));
        }
        // (3) Serve and absorb until locally idle; queued applies fill the
        // poll-idle windows, keeping the CPU busy under the latency.
        loop {
            abm.flush_all();
            let handled = {
                let mut handler = make_batch_handler(dt, &parked, &mut pf, cfg);
                abm.poll(&mut handler)
            };
            if handled > 0 {
                continue;
            }
            if let Some(w) = finished.pop_front() {
                apply_walk(dt, consumer, &w);
                continue;
            }
            break;
        }
        // (4) Round consensus: wake everything parked once the machine is
        // quiescent (every request answered, every reply delivered).
        let pending = parked.values().map(|v| v.len() as u64).sum::<u64>();
        let s = abm.stats();
        let totals = abm
            .comm_mut()
            .allreduce((s.posted, s.delivered, pending), |a, b| {
                (a.0 + b.0, a.1 + b.1, a.2 + b.2)
            });
        if totals.0 == totals.1 {
            if totals.2 == 0 && totals == prev {
                break;
            }
            for (_, walks) in std::mem::take(&mut parked) {
                active.extend(walks);
            }
        }
        prev = totals;
    }
    while let Some(w) = finished.pop_front() {
        apply_walk(dt, consumer, &w);
    }
    debug_assert!(active.is_empty() && parked.is_empty());
    stats.prefetched_cells = pf.cells;
    stats.prefetched_bytes = pf.bytes;
    stats.prefetch_hits = pf.hits;
    stats.prefetch_wasted_bytes = pf.unused.values().sum();
    stats.abm = abm.stats();
    stats.group_costs.sort_unstable();
    stats
}

/// The blocking baseline (`!cfg.coalesce`): one request message per key,
/// replies reactivate parked walks immediately, finished lists applied
/// inline. Kept verbatim from the pre-coalescing pipeline so `exp_latency`
/// measures the real before/after.
fn dwalk_blocking<M: Moments, C: ListConsumer<M>>(
    comm: &mut Comm,
    dt: &mut DistTree<M>,
    mac: &Mac,
    consumer: &mut C,
    group_size: usize,
    cfg: &WalkConfig,
) -> DwalkStats {
    let mut stats = DwalkStats::default();
    let mut active = initial_walks(dt, group_size);
    let mut parked: BTreeMap<Want, Vec<GroupWalk<M>>> = BTreeMap::new();
    let mut pf = PrefetchLedger::default();
    let mut abm = Abm::new(comm, cfg.abm_batch);

    // Main service loop, structured so that termination detection can use
    // blocking collectives without deadlock: a rank must never block in
    // the consensus while a peer still needs its data to make progress, so
    // every rank (1) drains its runnable walks, (2) serves/absorbs every
    // message available right now, and only then (3) joins the count
    // exchange. The exchange terminates when the machine-wide (posted,
    // delivered, runnable+parked) triple is stable at (n, n, 0) for two
    // consecutive iterations (double-count termination detection, as in
    // the ABM layer).
    let mut prev = (u64::MAX, u64::MAX, u64::MAX);
    loop {
        loop {
            while let Some(mut w) = active.pop() {
                match run_walk(dt, mac, &mut w, &mut pf) {
                    WalkOutcome::Done => {
                        pin_walk(dt, &mut w, &mut stats);
                        apply_walk(dt, consumer, &w);
                    }
                    WalkOutcome::Park { want, owner } => {
                        stats.parks += 1;
                        if !parked.contains_key(&want) {
                            stats.request_msgs += 1;
                            match want {
                                Want::Children(key) => {
                                    abm.post(owner, K_REQ_CHILDREN, &key);
                                    stats.cell_requests += 1;
                                }
                                Want::Bodies(key) => {
                                    abm.post(owner, K_REQ_BODIES, &key);
                                    stats.body_requests += 1;
                                }
                            }
                        }
                        parked.entry(want).or_default().push(w);
                    }
                }
            }
            abm.flush_all();
            let mut handler = make_handler(dt, &mut active, &mut parked);
            let handled = abm.poll(&mut handler);
            drop(handler);
            if active.is_empty() && handled == 0 {
                break;
            }
        }
        let pending = parked.values().map(|v| v.len() as u64).sum::<u64>();
        let s = abm.stats();
        let totals = abm
            .comm_mut()
            .allreduce((s.posted, s.delivered, pending), |a, b| {
                (a.0 + b.0, a.1 + b.1, a.2 + b.2)
            });
        if totals.0 == totals.1 && totals.2 == 0 && totals == prev {
            break;
        }
        prev = totals;
    }
    debug_assert!(active.is_empty() && parked.is_empty());
    stats.abm = abm.stats();
    stats.group_costs.sort_unstable();
    stats
}

/// Pin a completed walk's incremental pair accounting against the finished
/// list's closed form and fold its counts into the rank totals.
fn pin_walk<M: Moments>(dt: &DistTree<M>, w: &mut GroupWalk<M>, stats: &mut DwalkStats) {
    let sinks = dt.local.cells[w.gi as usize].span();
    let (pp, pc) = w.list.expected_stats(&sinks);
    assert_eq!(
        (w.stats.pp, w.stats.pc),
        (pp, pc),
        "dwalk stats for group {} disagree with its interaction list",
        w.gi
    );
    w.stats.listed_pp = w.list.pp_entries();
    w.stats.listed_pc = w.list.pc_entries();
    stats.walk.merge(&w.stats);
    stats.group_costs.push((w.gi, w.stats.opened));
}

/// Hand a finished walk's list to the consumer (the apply stage). Sink
/// groups are disjoint, so apply order cannot affect any per-sink sum.
fn apply_walk<M: Moments, C: ListConsumer<M>>(dt: &DistTree<M>, consumer: &mut C, w: &GroupWalk<M>) {
    let sinks = dt.local.cells[w.gi as usize].span();
    consumer.consume(&dt.local.pos, &dt.local.charge, sinks, &w.list);
}

/// Accounting for speculatively installed cells. `unused` maps a
/// prefetch-installed parent key to its records' wire bytes; opening the
/// parent moves it to `hits`, and whatever remains at the end of the walk
/// is the wasted-bytes total.
#[derive(Default)]
struct PrefetchLedger {
    cells: u64,
    bytes: u64,
    hits: u64,
    unused: BTreeMap<u64, u64>,
}

enum WalkOutcome {
    Done,
    /// The walk blocked on non-resident data; the caller posts the fetch
    /// (once per distinct key) and parks the walk under `want`.
    Park { want: Want, owner: u32 },
}

/// Drive one walk until it completes or blocks on non-resident data,
/// recording accepted sources into the walk's own interaction list.
fn run_walk<M: Moments>(
    dt: &DistTree<M>,
    mac: &Mac,
    w: &mut GroupWalk<M>,
    pf: &mut PrefetchLedger,
) -> WalkOutcome {
    let g = &dt.local.cells[w.gi as usize];
    let gc = g.center;
    let gr = g.bmax;
    let sinks = g.span();
    let gn = g.n as u64;

    while let Some(r) = w.stack.pop() {
        match r {
            Ref::Local(ci) => {
                if ci == w.gi {
                    w.list.push_pp(
                        &dt.local.pos[sinks.clone()],
                        &dt.local.charge[sinks.clone()],
                        Some(sinks.start),
                    );
                    w.stats.pp += gn * (gn - 1);
                    continue;
                }
                let c = &dt.local.cells[ci as usize];
                if c.n == 0 {
                    continue;
                }
                if mac.accepts(c, gc, gr) {
                    w.list.push_pc(c.center, &c.moments);
                    w.stats.pc += gn;
                } else if c.is_leaf() {
                    w.list.push_pp(
                        &dt.local.pos[c.span()],
                        &dt.local.charge[c.span()],
                        Some(c.first as usize),
                    );
                    w.stats.pp += gn * c.n as u64;
                } else {
                    w.stats.opened += 1;
                    w.stack.extend(dt.local.children(c).map(|k| Ref::Local(k as u32)));
                }
            }
            Ref::Node(ni) => {
                let node = &dt.nodes[ni as usize];
                if node.n == 0 {
                    continue;
                }
                if mac.accepts_raw(node.center, node.bmax, node.moments.b2(), gc, gr) {
                    w.list.push_pc(node.center, &node.moments);
                    w.stats.pc += gn;
                    continue;
                }
                match &node.children {
                    DChildren::Nodes(kids) => {
                        w.stats.opened += 1;
                        // Opening a parent whose children arrived
                        // speculatively is a prefetch hit: the round-trip
                        // this descent would have parked on was saved.
                        if pf.unused.remove(&node.key.0).is_some() {
                            pf.hits += 1;
                        }
                        w.stack.extend(kids.iter().map(|&k| Ref::Node(k)));
                    }
                    DChildren::LocalSubtree => {
                        // Graft into the local cell structure. Virtual
                        // branches (no resident cell) fall back to a direct
                        // span evaluation.
                        if let Some(ci) = dt.local.table.get(node.key) {
                            w.stack.push(Ref::Local(ci));
                        } else {
                            // Virtual branch: its particles live in a span
                            // of the local arrays (possibly aliasing the
                            // sink span — src_start lets the apply stage
                            // exclude self pairs). When the span *is* the
                            // sink span, count like the self-interaction
                            // case: gn·(len−1) pairs, not gn·len — the
                            // historical double-count this path had.
                            let span = dt.span_of(node.key);
                            if !span.is_empty() {
                                w.list.push_pp(
                                    &dt.local.pos[span.clone()],
                                    &dt.local.charge[span.clone()],
                                    Some(span.start),
                                );
                                let len = span.len() as u64;
                                w.stats.pp += if span == sinks {
                                    gn * (len - 1)
                                } else {
                                    gn * len
                                };
                            }
                        }
                    }
                    DChildren::RemoteLeaf => {
                        if let Some((bp, bq)) = dt.body_cache.get(&ni) {
                            w.list.push_pp(bp, bq, None);
                            w.stats.pp += gn * bp.len() as u64;
                        } else {
                            // Park: remember the blocking node by pushing it
                            // back; the resume path re-pops it with the
                            // cache filled.
                            w.stack.push(Ref::Node(ni));
                            return WalkOutcome::Park {
                                want: Want::Bodies(node.key.0),
                                owner: node.owner,
                            };
                        }
                    }
                    DChildren::RemoteUnfetched => {
                        w.stack.push(Ref::Node(ni));
                        return WalkOutcome::Park {
                            want: Want::Children(node.key.0),
                            owner: node.owner,
                        };
                    }
                }
            }
        }
    }
    WalkOutcome::Done
}

/// Install a body reply into the remote-leaf cache.
fn install_bodies<M: Moments>(dt: &mut DistTree<M>, key: u64, pairs: Vec<(Vec3, M::Charge)>) {
    let ni = dt
        .table
        .get(Key(key))
        // Protocol invariant: body replies match a prior request.
        // hot-lint: allow(unwrap-audit)
        .expect("body reply for unknown node");
    let mut pos = Vec::with_capacity(pairs.len());
    let mut charge = Vec::with_capacity(pairs.len());
    for (p, q) in pairs {
        pos.push(p);
        charge.push(q);
    }
    dt.body_cache.insert(ni, (pos, charge));
}

/// Serve one coalesced request: children records for every requested cell
/// key — each followed, budget permitting, by `prefetch_levels` of
/// speculative descendant records (breadth-first, parents always before
/// their children) — then all requested leaf bodies. Replies are chunked
/// into logical messages of at most `cfg.abm_batch` encoded bytes. The
/// entire reply, chunk boundaries included, is a pure function of the
/// request and the owner's local tree.
fn serve_batch<M: Moments>(
    dt: &DistTree<M>,
    ep: &mut Abm<'_>,
    src: u32,
    req: &KeyBatchRequest,
    cfg: &WalkConfig,
) {
    assert!(req.is_canonical(), "non-canonical key batch from rank {src}");
    if !req.cell_keys.is_empty() {
        let mut entries: Vec<(u64, Vec<CellRecord<M>>)> = Vec::new();
        let mut budget = cfg.prefetch_budget;
        for &key in &req.cell_keys {
            let records = dt.children_records(Key(key)).unwrap_or_default();
            let mut frontier: Vec<Key> =
                records.iter().filter(|r| !r.is_leaf).map(|r| r.key).collect();
            entries.push((key, records));
            'levels: for _ in 0..cfg.prefetch_levels {
                let mut next = Vec::new();
                for k in frontier {
                    let recs = dt.children_records(k).unwrap_or_default();
                    // Entry cost on the wire: parent key + record vector.
                    let sz = 8 + recs.wire_size();
                    if sz > budget {
                        budget = 0;
                        break 'levels;
                    }
                    budget -= sz;
                    next.extend(recs.iter().filter(|r| !r.is_leaf).map(|r| r.key));
                    entries.push((k.0, recs));
                }
                frontier = next;
            }
        }
        post_chunked(ep, src, K_REP_CELL_BATCH, entries, cfg.abm_batch);
    }
    if !req.body_keys.is_empty() {
        let entries: Vec<BodyBatchEntry<M>> = req
            .body_keys
            .iter()
            .map(|&k| {
                let (pos, charge) = dt.bodies_of(Key(k)).unwrap_or_default();
                (k, pos.into_iter().zip(charge).collect())
            })
            .collect();
        post_chunked(ep, src, K_REP_BODY_BATCH, entries, cfg.abm_batch);
    }
}

/// One `K_REP_BODY_BATCH` entry: a leaf key and its `(position, charge)`
/// pairs.
type BodyBatchEntry<M> = (u64, Vec<(Vec3, <M as Moments>::Charge)>);

/// Post `entries` as one or more `kind` messages, greedily packing whole
/// entries up to `limit` encoded bytes per message (always at least one
/// entry per message). Entry order — and with it the parents-before-
/// descendants invariant — survives chunking because ABM delivery is
/// in-order per flow.
fn post_chunked<T: Wire>(ep: &mut Abm<'_>, dst: u32, kind: u16, entries: Vec<T>, limit: usize) {
    let mut chunk: Vec<T> = Vec::new();
    let mut size = 8usize; // the Vec length prefix
    for e in entries {
        let sz = e.wire_size();
        if !chunk.is_empty() && size + sz > limit {
            ep.post(dst, kind, &chunk);
            chunk.clear();
            size = 8;
        }
        size += sz;
        chunk.push(e);
    }
    if !chunk.is_empty() {
        ep.post(dst, kind, &chunk);
    }
}

/// ABM handler for the coalesced pipeline. Replies install data but never
/// reactivate walks — reactivation waits for the round boundary, which is
/// what keeps request sets schedule-independent. A reply entry whose key
/// nobody here parked on is a speculative prefetch and is ledgered as
/// such.
fn make_batch_handler<'h, M: Moments>(
    dt: &'h mut DistTree<M>,
    parked: &'h BTreeMap<Want, Vec<GroupWalk<M>>>,
    pf: &'h mut PrefetchLedger,
    cfg: &'h WalkConfig,
) -> impl FnMut(&mut Abm<'_>, u32, u16, Bytes) + 'h {
    move |ep, src, kind, payload| match kind {
        K_REQ_BATCH => {
            let req: KeyBatchRequest = from_bytes(payload);
            serve_batch(dt, ep, src, &req, cfg);
        }
        K_REP_CELL_BATCH => {
            let entries: Vec<(u64, Vec<CellRecord<M>>)> = from_bytes(payload);
            for (key, records) in entries {
                let requested = parked.contains_key(&Want::Children(key));
                let installed = dt.install_children(Key(key), &records);
                if !requested && !installed.is_empty() {
                    let bytes = records.wire_size() as u64;
                    pf.cells += records.len() as u64;
                    pf.bytes += bytes;
                    pf.unused.insert(key, bytes);
                }
            }
        }
        K_REP_BODY_BATCH => {
            let entries: Vec<BodyBatchEntry<M>> = from_bytes(payload);
            for (key, pairs) in entries {
                install_bodies(dt, key, pairs);
            }
        }
        other => panic!("unknown ABM message kind {other}"),
    }
}

/// ABM handler for the blocking baseline: serves per-key requests and
/// reactivates parked walks the moment their reply installs.
fn make_handler<'h, M: Moments>(
    dt: &'h mut DistTree<M>,
    active: &'h mut Vec<GroupWalk<M>>,
    parked: &'h mut BTreeMap<Want, Vec<GroupWalk<M>>>,
) -> impl FnMut(&mut Abm<'_>, u32, u16, Bytes) + 'h {
    move |ep, src, kind, payload| match kind {
        K_REQ_CHILDREN => {
            let key: u64 = from_bytes(payload);
            let records = dt.children_records(Key(key)).unwrap_or_default();
            ep.post(src, K_REP_CHILDREN, &(key, records));
        }
        K_REQ_BODIES => {
            let key: u64 = from_bytes(payload);
            let (pos, charge) = dt.bodies_of(Key(key)).unwrap_or_default();
            let pairs: Vec<(Vec3, M::Charge)> = pos.into_iter().zip(charge).collect();
            ep.post(src, K_REP_BODIES, &(key, pairs));
        }
        K_REP_CHILDREN => {
            let (key, records): (u64, Vec<CellRecord<M>>) = from_bytes(payload);
            dt.install_children(Key(key), &records);
            if let Some(walks) = parked.remove(&Want::Children(key)) {
                active.extend(walks);
            }
        }
        K_REP_BODIES => {
            let (key, pairs): (u64, Vec<(Vec3, M::Charge)>) = from_bytes(payload);
            install_bodies(dt, key, pairs);
            if let Some(walks) = parked.remove(&Want::Bodies(key)) {
                active.extend(walks);
            }
        }
        other => panic!("unknown ABM message kind {other}"),
    }
}

#[cfg(test)]
mod tests {
    use hot_comm::RunConfig;
    use super::*;
    use crate::decomp::{decompose, Body};
    use crate::ilist::Segment;
    use crate::moments::MassMoments;
    use crate::tree::Tree;
    use hot_base::Aabb;
    use hot_morton::Key;
    use rand::{Rng, SeedableRng};
    use std::ops::Range;

    /// Mass-coverage consumer, distributed flavour: every source entry in
    /// a group's list (particles and cell masses alike) is "seen" once by
    /// each sink in the group.
    struct MassCoverage {
        seen: Vec<f64>,
    }

    impl ListConsumer<MassMoments> for MassCoverage {
        fn consume(
            &mut self,
            _pos: &[Vec3],
            _charge: &[f64],
            sinks: Range<usize>,
            list: &InteractionList<MassMoments>,
        ) {
            let mut total = 0.0;
            for seg in list.segments() {
                match seg {
                    Segment::Pp(v) => total += v.q.iter().sum::<f64>(),
                    Segment::Pc(c) => total += c.m.iter().map(|m| m.mass).sum::<f64>(),
                }
            }
            for i in sinks {
                self.seen[i] += total;
            }
        }
    }

    fn make_bodies(c: &Comm, n_per: usize, seed: u64, clustered: bool) -> Vec<Body<f64>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + c.rank() as u64);
        (0..n_per)
            .map(|i| {
                let pos = if clustered && i % 2 == 0 {
                    Vec3::new(
                        0.1 + rng.gen::<f64>() * 0.01,
                        0.1 + rng.gen::<f64>() * 0.01,
                        0.1 + rng.gen::<f64>() * 0.01,
                    )
                } else {
                    Vec3::new(rng.gen(), rng.gen(), rng.gen())
                };
                Body {
                    key: Key::from_point(pos, &Aabb::unit()),
                    pos,
                    charge: 1.0 + (i % 4) as f64 * 0.5,
                    work: 1.0,
                    id: c.rank() as u64 * 1_000_000 + i as u64,
                }
            })
            .collect()
    }

    fn coverage_run_with(np: u32, n_per: usize, theta: f64, clustered: bool, cfg: WalkConfig) {
        let out = RunConfig::builder().np(np).run(move |c| {
            let bodies = make_bodies(c, n_per, 1234, clustered);
            let (mine, iv) = decompose(c, bodies, 32);
            let pos: Vec<Vec3> = mine.iter().map(|b| b.pos).collect();
            let q: Vec<f64> = mine.iter().map(|b| b.charge).collect();
            let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &q, 8);
            let mut dt = DistTree::build(c, tree, iv);
            let total_mass = c.allreduce_sum_f64(q.iter().sum());
            let mut cov = MassCoverage { seen: vec![0.0; dt.local.n_particles()] };
            let stats = dwalk_with(c, &mut dt, &Mac::BarnesHut { theta }, &mut cov, 16, &cfg);
            (cov.seen, total_mass, stats.walk.interactions(), stats.parks)
        });
        let mut total_parks = 0;
        for (rank, (seen, total_mass, inter, parks)) in out.results.iter().enumerate() {
            for (i, &s) in seen.iter().enumerate() {
                assert!(
                    (s - total_mass).abs() < 1e-9 * total_mass,
                    "np={np} rank={rank} sink={i}: saw {s} of {total_mass}"
                );
            }
            if seen.len() > 1 {
                assert!(*inter > 0);
            }
            total_parks += parks;
        }
        if np > 1 {
            // With several ranks the walks must actually have context
            // switched at least somewhere.
            assert!(total_parks > 0, "np={np}: no latency hiding exercised");
        }
    }

    fn coverage_run(np: u32, n_per: usize, theta: f64, clustered: bool) {
        coverage_run_with(np, n_per, theta, clustered, WalkConfig::default());
    }

    #[test]
    fn coverage_single_rank() {
        coverage_run(1, 500, 0.7, false);
    }

    #[test]
    fn coverage_two_ranks() {
        coverage_run(2, 400, 0.7, false);
    }

    #[test]
    fn coverage_five_ranks() {
        coverage_run(5, 300, 0.6, false);
    }

    #[test]
    fn coverage_clustered() {
        coverage_run(4, 400, 0.8, true);
    }

    #[test]
    fn coverage_tight_mac() {
        // A very tight theta forces deep descent into remote trees and
        // plenty of body fetches.
        coverage_run(3, 200, 0.25, false);
    }

    #[test]
    fn coverage_blocking_baseline() {
        coverage_run_with(3, 300, 0.5, false, WalkConfig::blocking());
    }

    #[test]
    fn coverage_deep_prefetch_tiny_batches() {
        // Aggressive prefetch with a tiny batch capacity forces reply
        // chunking across many physical batches.
        let cfg = WalkConfig {
            abm_batch: 256,
            prefetch_levels: 3,
            prefetch_budget: 1 << 16,
            ..WalkConfig::default()
        };
        coverage_run_with(3, 300, 0.5, false, cfg);
    }

    /// Every pipeline configuration must produce the same lists, and so
    /// the same coverage sums (bitwise), interaction counts, and request
    /// key sets — only message counts and prefetch traffic may differ.
    #[test]
    fn pipeline_configs_agree_bitwise() {
        let configs = [
            WalkConfig::blocking(),
            WalkConfig { prefetch_levels: 0, overlap_apply: false, ..WalkConfig::default() },
            WalkConfig::default(),
            WalkConfig {
                abm_batch: 512,
                prefetch_levels: 2,
                prefetch_budget: 1 << 15,
                ..WalkConfig::default()
            },
        ];
        type RankResult = (Vec<u64>, u64, u64, u64);
        let mut reference: Option<Vec<RankResult>> = None;
        for cfg in configs {
            let out = RunConfig::builder().np(4).run(move |c| {
                let bodies = make_bodies(c, 350, 99, true);
                let (mine, iv) = decompose(c, bodies, 32);
                let pos: Vec<Vec3> = mine.iter().map(|b| b.pos).collect();
                let q: Vec<f64> = mine.iter().map(|b| b.charge).collect();
                let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &q, 8);
                let mut dt = DistTree::build(c, tree, iv);
                let mut cov = MassCoverage { seen: vec![0.0; dt.local.n_particles()] };
                let stats =
                    dwalk_with(c, &mut dt, &Mac::BarnesHut { theta: 0.6 }, &mut cov, 16, &cfg);
                let bits: Vec<u64> = cov.seen.iter().map(|s| s.to_bits()).collect();
                (bits, stats.walk.pp, stats.walk.pc, stats.walk.opened)
            });
            match &reference {
                None => reference = Some(out.results),
                Some(r) => assert_eq!(r, &out.results, "pipeline {cfg:?} diverged"),
            }
        }
    }

    /// Coalescing must collapse the per-key message count: with prefetch
    /// off, the same distinct keys are fetched, but in (far) fewer request
    /// messages; with prefetch on, hits replace whole requests.
    #[test]
    fn coalescing_reduces_request_messages() {
        let run = |cfg: WalkConfig| {
            RunConfig::builder().np(4).run(move |c| {
                let bodies = make_bodies(c, 350, 7, false);
                let (mine, iv) = decompose(c, bodies, 32);
                let pos: Vec<Vec3> = mine.iter().map(|b| b.pos).collect();
                let q: Vec<f64> = mine.iter().map(|b| b.charge).collect();
                let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &q, 8);
                let mut dt = DistTree::build(c, tree, iv);
                let mut cov = MassCoverage { seen: vec![0.0; dt.local.n_particles()] };
                let stats =
                    dwalk_with(c, &mut dt, &Mac::BarnesHut { theta: 0.5 }, &mut cov, 16, &cfg);
                (
                    stats.request_msgs,
                    stats.cell_requests + stats.body_requests,
                    stats.rounds,
                    stats.prefetch_hits,
                )
            })
        };
        let blocking = run(WalkConfig::blocking());
        let coalesced = run(WalkConfig { prefetch_levels: 0, ..WalkConfig::default() });
        let prefetching = run(WalkConfig::default());
        let sum = |r: &hot_comm::RunOutput<(u64, u64, u64, u64)>, f: fn(&(u64, u64, u64, u64)) -> u64| {
            r.results.iter().map(f).sum::<u64>()
        };
        let blocking_msgs = sum(&blocking, |r| r.0);
        let coalesced_msgs = sum(&coalesced, |r| r.0);
        assert_eq!(
            blocking_msgs,
            sum(&blocking, |r| r.1),
            "blocking mode posts one message per distinct key"
        );
        // Same keys, coalesced into one message per owner per round.
        assert_eq!(sum(&blocking, |r| r.1), sum(&coalesced, |r| r.1));
        assert!(
            coalesced_msgs * 2 <= blocking_msgs,
            "coalescing saved too little: {coalesced_msgs} vs {blocking_msgs}"
        );
        assert!(sum(&coalesced, |r| r.2) > 0, "no rounds counted");
        // Prefetch must convert some would-be requests into hits...
        assert!(sum(&prefetching, |r| r.3) > 0, "prefetch never hit");
        // ...which strictly reduces the number of distinct keys requested.
        assert!(sum(&prefetching, |r| r.1) < sum(&coalesced, |r| r.1));
    }

    /// The distributed walk must agree with a serial walk over the union of
    /// all particles — same MAC, same bucket — on the *interaction counts*
    /// seen per rank in aggregate (they partition the sinks).
    #[test]
    fn matches_serial_interaction_totals() {
        let np = 3u32;
        let n_total = 600usize;
        // Deterministic global particle set.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let all_pos: Vec<Vec3> =
            (0..n_total).map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen())).collect();
        let all_q = vec![1.0f64; n_total];

        // Serial reference (list-build only; the counts are all we need).
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &all_pos, &all_q, 8);
        let mut scratch = InteractionList::new();
        let mut serial_total = 0.0;
        for gi in tree.groups(16) {
            let s = crate::walk::walk_group_list(
                &tree,
                &Mac::BarnesHut { theta: 0.7 },
                gi,
                &mut scratch,
            );
            serial_total += s.interactions() as f64;
        }

        let pos_clone = all_pos.clone();
        let out = RunConfig::builder().np(np).run(move |c| {
            let per = n_total / np as usize;
            let lo = c.rank() as usize * per;
            let hi = if c.rank() == np - 1 { n_total } else { lo + per };
            let bodies: Vec<Body<f64>> = (lo..hi)
                .map(|i| Body {
                    key: Key::from_point(pos_clone[i], &Aabb::unit()),
                    pos: pos_clone[i],
                    charge: 1.0,
                    work: 1.0,
                    id: i as u64,
                })
                .collect();
            let (mine, iv) = decompose(c, bodies, 32);
            let pos: Vec<Vec3> = mine.iter().map(|b| b.pos).collect();
            let q: Vec<f64> = mine.iter().map(|b| b.charge).collect();
            let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &q, 8);
            let mut dt = DistTree::build(c, tree, iv);
            let mut cov = MassCoverage { seen: vec![0.0; dt.local.n_particles()] };
            let stats = dwalk(c, &mut dt, &Mac::BarnesHut { theta: 0.7 }, &mut cov, 16);
            stats.walk.interactions()
        });
        let dist_total: u64 = out.results.iter().sum();
        // Not identical (the decomposition changes group shapes), but the
        // same order: within 40% of the serial count.
        let ratio = dist_total as f64 / serial_total;
        assert!(
            (0.6..1.67).contains(&ratio),
            "distributed {dist_total} vs serial {serial_total} (ratio {ratio})"
        );
    }

    /// Every rank's pair accounting must reconcile with its list-entry
    /// counts: interactions are the per-sink fan-out of the listed
    /// entries, minus exactly one self-pair per sink.
    #[test]
    fn listed_entries_reconcile_with_interactions() {
        let out = RunConfig::builder().np(2).run(|c| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(77 + c.rank() as u64);
            let bodies: Vec<Body<f64>> = (0..300)
                .map(|i| {
                    let pos = Vec3::new(rng.gen(), rng.gen(), rng.gen());
                    Body {
                        key: Key::from_point(pos, &Aabb::unit()),
                        pos,
                        charge: 1.0,
                        work: 1.0,
                        id: c.rank() as u64 * 1_000_000 + i,
                    }
                })
                .collect();
            let (mine, iv) = decompose(c, bodies, 32);
            let pos: Vec<Vec3> = mine.iter().map(|b| b.pos).collect();
            let q: Vec<f64> = mine.iter().map(|b| b.charge).collect();
            let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &q, 8);
            let mut dt = DistTree::build(c, tree, iv);
            let mut cov = MassCoverage { seen: vec![0.0; dt.local.n_particles()] };
            let stats = dwalk(c, &mut dt, &Mac::BarnesHut { theta: 0.6 }, &mut cov, 16);
            stats.walk
        });
        for w in out.results {
            assert!(w.listed_pp > 0 && w.listed_pc > 0);
            // Fan-out bound: each listed entry is seen by at least one and
            // at most group_size sinks (self-pairs only ever subtract).
            assert!(w.pp >= w.listed_pp.saturating_sub(1));
            assert!(w.pp <= w.listed_pp * 16);
            assert!(w.pc >= w.listed_pc && w.pc <= w.listed_pc * 16);
        }
    }
}
