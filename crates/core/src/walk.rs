//! Tree traversal: turn a tree + acceptance criterion into interactions.
//!
//! The walk proceeds per *sink group* (a shallow cell holding a bucket of
//! nearby particles): one pass down the tree decides, for the whole group,
//! which cells interact as multipoles and which leaves must be evaluated
//! particle-by-particle. Physics modules receive those decisions through
//! the [`Evaluator`] trait and do the arithmetic — the tree neither knows
//! nor cares whether it is computing gravity, vorticity or SPH neighbour
//! lists, which is precisely the paper's library/application split.

use crate::ilist::{InteractionList, ListBuilder, ListConsumer};
use crate::mac::Mac;
use crate::moments::Moments;
use crate::tree::Tree;
use std::ops::Range;

/// Consumer of traversal decisions.
pub trait Evaluator<M: Moments> {
    /// The sink particles `sinks` (a range in the tree's sorted arrays)
    /// interact with a multipole expansion `m` centred at `center`.
    fn particle_cell(
        &mut self,
        tree: &Tree<M>,
        sinks: Range<usize>,
        center: hot_base::Vec3,
        m: &M,
    );

    /// The sink particles interact directly with the listed sources.
    ///
    /// When the sources are the tree's own particles, `src_start` is the
    /// tree-order index of `src_pos[0]`, and the evaluator must skip the
    /// self pair `src_start + j == i` (source spans may equal, contain, or
    /// be contained in the sink span — all arise in the distributed walk).
    /// Remote (ghost) sources pass `None`: they can never alias a local
    /// sink.
    fn particle_particle(
        &mut self,
        tree: &Tree<M>,
        sinks: Range<usize>,
        src_pos: &[hot_base::Vec3],
        src_charge: &[M::Charge],
        src_start: Option<usize>,
    );
}

/// Interaction counts produced by a walk, in the units the paper reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Particle–particle interactions (sink × source pairs, self-pairs
    /// excluded).
    pub pp: u64,
    /// Particle–cell interactions (sink × accepted-cell pairs).
    pub pc: u64,
    /// Cells opened (MAC rejections that recursed).
    pub opened: u64,
    /// P-P source *entries* recorded into interaction lists (list-build
    /// side; zero for callback-style walks). One entry fans out to one
    /// interaction per sink in its group.
    pub listed_pp: u64,
    /// P-C accepted-cell entries recorded into interaction lists.
    pub listed_pc: u64,
}

impl WalkStats {
    /// Combine counts.
    pub fn merge(&mut self, o: &WalkStats) {
        self.pp += o.pp;
        self.pc += o.pc;
        self.opened += o.opened;
        self.listed_pp += o.listed_pp;
        self.listed_pc += o.listed_pc;
    }

    /// Total interactions.
    pub fn interactions(&self) -> u64 {
        self.pp + self.pc
    }

    /// Record the traversal-side counters (cells opened, list entries)
    /// into the current trace span. The interaction counts (`pp`/`pc`)
    /// belong to the *force* phase and are recorded there (see
    /// `hot_gravity::evaluator::record_force_phase`) — recording them in
    /// both places would double-count the run totals. Listed entries are
    /// a list-*build* cost, distinct from the per-sink interaction
    /// fan-out, so they live in the walk span.
    pub fn record_traversal(&self, trace: &mut hot_trace::Ledger) {
        trace.add(hot_trace::Counter::CellsOpened, self.opened);
        trace.add(hot_trace::Counter::PpListed, self.listed_pp);
        trace.add(hot_trace::Counter::PcListed, self.listed_pc);
    }
}

/// Walk the tree for one sink group (`gi` indexes `tree.cells`).
pub fn walk_group<M: Moments, E: Evaluator<M>>(
    tree: &Tree<M>,
    mac: &Mac,
    gi: u32,
    eval: &mut E,
) -> WalkStats {
    let g = &tree.cells[gi as usize];
    let gc = g.center;
    let gr = g.bmax;
    let sinks = g.span();
    let gn = g.n as u64;
    let mut stats = WalkStats::default();

    let mut stack: Vec<usize> = vec![0];
    while let Some(ci) = stack.pop() {
        if ci == gi as usize {
            // The group against itself: direct sum without self-pairs.
            eval.particle_particle(
                tree,
                sinks.clone(),
                &tree.pos[sinks.clone()],
                &tree.charge[sinks.clone()],
                Some(sinks.start),
            );
            stats.pp += gn * (gn - 1);
            continue;
        }
        let c = &tree.cells[ci];
        if c.n == 0 {
            continue;
        }
        if mac.accepts(c, gc, gr) {
            eval.particle_cell(tree, sinks.clone(), c.center, &c.moments);
            stats.pc += gn;
        } else if c.is_leaf() {
            eval.particle_particle(
                tree,
                sinks.clone(),
                &tree.pos[c.span()],
                &tree.charge[c.span()],
                Some(c.first as usize),
            );
            stats.pp += gn * c.n as u64;
        } else {
            stats.opened += 1;
            stack.extend(tree.children(c));
        }
    }
    stats
}

/// Walk every sink group sequentially. Returns total counts.
pub fn walk<M: Moments, E: Evaluator<M>>(tree: &Tree<M>, mac: &Mac, eval: &mut E) -> WalkStats {
    let mut stats = WalkStats::default();
    for gi in tree.groups(default_group_size(tree.bucket)) {
        stats.merge(&walk_group(tree, mac, gi, eval));
    }
    stats
}

/// Walk one sink group into an interaction list (list-build stage).
///
/// `list` is cleared first and holds exactly this group's accepted
/// sources afterwards. The returned stats carry the list-entry counts,
/// and the walk's pair accounting is pinned against the list lengths —
/// the two are computed independently (incremental counters during the
/// walk vs. a closed form over the finished list), so a double- or
/// under-counted `WalkStats` panics here rather than silently skewing
/// the paper's interaction totals.
pub fn walk_group_list<M: Moments>(
    tree: &Tree<M>,
    mac: &Mac,
    gi: u32,
    list: &mut InteractionList<M>,
) -> WalkStats {
    list.clear();
    let mut stats = walk_group(tree, mac, gi, &mut ListBuilder::new(list));
    let sinks = tree.cells[gi as usize].span();
    let (pp, pc) = list.expected_stats(&sinks);
    assert_eq!(
        (stats.pp, stats.pc),
        (pp, pc),
        "walk stats for group {gi} disagree with its interaction list"
    );
    stats.listed_pp = list.pp_entries();
    stats.listed_pc = list.pc_entries();
    stats
}

/// The two-stage evaluation: build each sink group's interaction list,
/// then hand it to `consumer` (the apply stage). `scratch` is the reused
/// list buffer — steady state allocates nothing.
pub fn walk_lists<M: Moments, C: ListConsumer<M>>(
    tree: &Tree<M>,
    mac: &Mac,
    consumer: &mut C,
    scratch: &mut InteractionList<M>,
) -> WalkStats {
    let mut stats = WalkStats::default();
    for gi in tree.groups(default_group_size(tree.bucket)) {
        stats.merge(&walk_group_list(tree, mac, gi, scratch));
        let sinks = tree.cells[gi as usize].span();
        consumer.consume(&tree.pos, &tree.charge, sinks, scratch);
    }
    stats
}

/// Group size heuristic: a few leaf buckets per walk amortizes traversal
/// overhead without bloating the near-field work.
pub fn default_group_size(bucket: usize) -> usize {
    (bucket * 2).max(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::MassMoments;
    use hot_base::{Aabb, Vec3};
    use rand::{Rng, SeedableRng};

    /// Accumulates, per sink index, the total source mass it has "seen".
    struct MassCoverage {
        seen: Vec<f64>,
        pp_events: u64,
        pc_events: u64,
    }

    impl Evaluator<MassMoments> for MassCoverage {
        fn particle_cell(
            &mut self,
            _tree: &Tree<MassMoments>,
            sinks: Range<usize>,
            _center: Vec3,
            m: &MassMoments,
        ) {
            self.pc_events += 1;
            for i in sinks {
                self.seen[i] += m.mass;
            }
        }
        fn particle_particle(
            &mut self,
            _tree: &Tree<MassMoments>,
            sinks: Range<usize>,
            _src_pos: &[Vec3],
            src_charge: &[f64],
            _src_start: Option<usize>,
        ) {
            self.pp_events += 1;
            let total: f64 = src_charge.iter().sum();
            for i in sinks {
                self.seen[i] += total;
            }
        }
    }

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen())).collect()
    }

    /// The fundamental conservation property of any treecode traversal:
    /// every sink accounts for the entire mass of the system exactly once
    /// (its own mass arrives through the self-interaction span).
    #[test]
    fn every_sink_sees_total_mass_exactly_once() {
        for &(n, theta) in
            &[(200usize, 0.6f64), (1000, 0.8), (1000, 0.3), (47, 0.5), (1, 1.0), (9, 0.7)]
        {
            let pos = random_points(n, n as u64);
            let masses: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.25).collect();
            let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &masses, 8);
            let mtot: f64 = masses.iter().sum();
            let mut cov =
                MassCoverage { seen: vec![0.0; n], pp_events: 0, pc_events: 0 };
            let stats = walk(&tree, &Mac::BarnesHut { theta }, &mut cov);
            for (i, &s) in cov.seen.iter().enumerate() {
                assert!(
                    (s - mtot).abs() < 1e-9 * mtot.max(1.0),
                    "n={n} theta={theta} sink {i}: saw {s}, want {mtot}"
                );
            }
            if n > 1 {
                assert!(stats.interactions() > 0);
            }
        }
    }

    #[test]
    fn salmon_warren_also_conserves() {
        let n = 600;
        let pos = random_points(n, 99);
        let masses = vec![1.0; n];
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &masses, 8);
        let mut cov = MassCoverage { seen: vec![0.0; n], pp_events: 0, pc_events: 0 };
        walk(&tree, &Mac::SalmonWarren { delta: 1e-3 }, &mut cov);
        for &s in &cov.seen {
            assert!((s - n as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn small_theta_means_more_interactions() {
        let n = 1500;
        let pos = random_points(n, 4);
        let masses = vec![1.0; n];
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &masses, 8);
        let count = |theta: f64| {
            let mut cov = MassCoverage { seen: vec![0.0; n], pp_events: 0, pc_events: 0 };
            walk(&tree, &Mac::BarnesHut { theta }, &mut cov).interactions()
        };
        let loose = count(1.0);
        let tight = count(0.3);
        assert!(
            tight > loose * 2,
            "tight MAC must cost much more: {tight} vs {loose}"
        );
        // And both far below the N² count.
        assert!(tight < (n as u64) * (n as u64));
    }

    #[test]
    fn interactions_scale_like_n_log_n() {
        // interactions per particle should grow slowly (log N), not linearly.
        let per_particle = |n: usize| {
            let pos = random_points(n, 2);
            let masses = vec![1.0; n];
            let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &masses, 8);
            let mut cov = MassCoverage { seen: vec![0.0; n], pp_events: 0, pc_events: 0 };
            let s = walk(&tree, &Mac::BarnesHut { theta: 0.7 }, &mut cov);
            s.interactions() as f64 / n as f64
        };
        let small = per_particle(500);
        let large = per_particle(4000);
        // 8x more particles: per-particle cost grows, but far less than 8x.
        assert!(large > small, "cost/particle should grow with N");
        assert!(large < small * 3.0, "treecode scaling violated: {small} -> {large}");
    }

    #[test]
    fn walk_stats_match_evaluator_events() {
        let n = 400;
        let pos = random_points(n, 6);
        let masses = vec![1.0; n];
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pos, &masses, 8);
        let mut cov = MassCoverage { seen: vec![0.0; n], pp_events: 0, pc_events: 0 };
        let stats = walk(&tree, &Mac::BarnesHut { theta: 0.6 }, &mut cov);
        assert!(cov.pc_events > 0 && cov.pp_events > 0);
        assert!(stats.pc > 0 && stats.pp > 0 && stats.opened > 0);
    }

    #[test]
    fn single_particle_walk_is_trivial() {
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &[Vec3::splat(0.5)], &[1.0], 8);
        let mut cov = MassCoverage { seen: vec![0.0; 1], pp_events: 0, pc_events: 0 };
        let stats = walk(&tree, &Mac::BarnesHut { theta: 0.5 }, &mut cov);
        assert_eq!(stats.pp, 0);
        assert_eq!(stats.pc, 0);
        assert_eq!(cov.seen[0], 1.0); // itself, via the self-span
    }
}
