//! Property-based tests of the tree layer (proptest).

#![cfg(test)]

use crate::htable::KeyTable;
use crate::moments::MassMoments;
use crate::tree::Tree;
use hot_base::{Aabb, Vec3};
use hot_morton::Key;
use proptest::prelude::*;

fn unit_points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec3>> {
    proptest::collection::vec(
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tree structural invariants hold for arbitrary point sets and bucket
    /// sizes (including duplicates and tiny buckets).
    #[test]
    fn tree_validates_for_arbitrary_inputs(
        mut pts in unit_points(1..300),
        bucket in 1usize..40,
        dup in 0usize..5,
    ) {
        // Inject duplicates to stress the max-depth path.
        for k in 0..dup.min(pts.len()) {
            let p = pts[k];
            pts.push(p);
        }
        let masses = vec![1.0; pts.len()];
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pts, &masses, bucket);
        tree.validate();
        prop_assert_eq!(tree.n_particles(), pts.len());
        prop_assert!((tree.root().moments.mass - pts.len() as f64).abs() < 1e-9);
    }

    /// Groups partition the particles for any group bound.
    #[test]
    fn groups_partition(pts in unit_points(1..300), gs in 1usize..64) {
        let masses = vec![1.0; pts.len()];
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pts, &masses, 8);
        let mut seen = vec![false; pts.len()];
        for gi in tree.groups(gs) {
            for i in tree.cells[gi as usize].span() {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Mass coverage: every sink sees total mass once, for arbitrary point
    /// sets, bucket sizes and angles — the treecode's fundamental
    /// conservation property, fuzzed.
    #[test]
    fn walk_mass_coverage(
        pts in unit_points(2..200),
        bucket in 1usize..24,
        theta in 0.2f64..1.2,
    ) {
        use crate::walk::{walk, Evaluator};
        use std::ops::Range;
        struct Cov(Vec<f64>);
        impl Evaluator<MassMoments> for Cov {
            fn particle_cell(&mut self, _t: &Tree<MassMoments>, s: Range<usize>, _c: Vec3, m: &MassMoments) {
                for i in s { self.0[i] += m.mass; }
            }
            fn particle_particle(&mut self, _t: &Tree<MassMoments>, s: Range<usize>, _p: &[Vec3], q: &[f64], _o: Option<usize>) {
                let total: f64 = q.iter().sum();
                for i in s { self.0[i] += total; }
            }
        }
        let masses = vec![1.0; pts.len()];
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pts, &masses, bucket);
        let mut cov = Cov(vec![0.0; pts.len()]);
        walk(&tree, &crate::Mac::BarnesHut { theta }, &mut cov);
        let n = pts.len() as f64;
        for &s in &cov.0 {
            prop_assert!((s - n).abs() < 1e-9 * n, "saw {s}, want {n}");
        }
    }

    /// The KeyTable behaves exactly like a reference map under arbitrary
    /// operation sequences.
    #[test]
    fn keytable_model_check(ops in proptest::collection::vec((1u64..500, 0u32..100), 1..500)) {
        let mut table = KeyTable::with_capacity(4);
        let mut model = std::collections::HashMap::new();
        for (raw, val) in ops {
            let k = Key(raw);
            prop_assert_eq!(table.insert(k, val), model.insert(k, val));
            prop_assert_eq!(table.len(), model.len());
        }
        for (&k, &v) in &model {
            prop_assert_eq!(table.get(k), Some(v));
        }
        // Absent keys miss.
        for raw in 500..520 {
            prop_assert_eq!(table.get(Key(raw)), None);
        }
    }

    /// Cell bmax bounds are respected against brute force for arbitrary
    /// input (a tight invariant the MAC correctness rests on).
    #[test]
    fn bmax_really_bounds(pts in unit_points(1..150)) {
        let masses = vec![1.0; pts.len()];
        let tree = Tree::<MassMoments>::build(Aabb::unit(), &pts, &masses, 6);
        for c in &tree.cells {
            for i in c.span() {
                let d = (tree.pos[i] - c.center).norm();
                prop_assert!(d <= c.bmax * (1.0 + 1e-12) + 1e-300);
            }
        }
    }
}

proptest! {
    // Each case spins up an np-rank simulated machine; keep the case count
    // moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole balance invariant, fuzzed: starting from an arbitrary
    /// count-based partition, a forced incremental rebalance (threshold 0)
    /// must land on body sets and `KeyIntervals` bitwise identical to a
    /// from-scratch cost-exact decomposition at the same costs — for
    /// arbitrary positions, cost vectors and rank counts. Both reduce to
    /// the same pure function of the global (key, cost) multiset.
    #[test]
    fn incremental_rebalance_equals_from_scratch(
        pts in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 1u32..100_000),
            8..120,
        ),
        np in 1u32..6,
        dup in 0usize..6,
    ) {
        use crate::decomp::{decompose, decompose_costed_traced, rebalance_traced, Body};
        use hot_comm::RunConfig;
        use hot_trace::Ledger;

        // Duplicate a few entries so equal keys with different costs hit
        // the equal-key-group cut logic.
        let mut pts = pts;
        for k in 0..dup.min(pts.len()) {
            let p = pts[k];
            pts.push(p);
        }
        let pts_c = pts.clone();
        let out = RunConfig::builder().np(np).run(move |c| {
            let bodies: Vec<Body<f64>> = pts_c
                .iter()
                .enumerate()
                .filter(|(i, _)| *i as u32 % np == c.rank())
                .map(|(i, &(x, y, z, w))| {
                    let pos = Vec3::new(x, y, z);
                    Body {
                        key: Key::from_point(pos, &Aabb::unit()),
                        pos,
                        charge: 1.0,
                        work: w as f32,
                        id: i as u64,
                    }
                })
                .collect();
            // Arbitrary (count-quantile) starting partition.
            let (mine, iv) = decompose(c, bodies, 16);
            // Incremental: force a repartition from wherever we are.
            let mut t1 = Ledger::scratch();
            let (inc_bodies, inc_iv, reb) =
                rebalance_traced(c, mine.clone(), iv, 0, &mut t1);
            assert!(reb.repartitioned, "threshold 0 must always repartition");
            // From scratch at the same costs.
            let mut t2 = Ledger::scratch();
            let (fs_bodies, fs_iv) = decompose_costed_traced(c, mine, 16, &mut t2);
            let ids = |v: &[Body<f64>]| -> Vec<(u64, u64)> {
                v.iter().map(|b| (b.key.0, b.id)).collect()
            };
            (ids(&inc_bodies), ids(&fs_bodies), inc_iv, fs_iv)
        });
        for (inc, fs, inc_iv, fs_iv) in out.results {
            prop_assert_eq!(inc, fs, "body sets diverged");
            prop_assert_eq!(inc_iv, fs_iv, "intervals diverged");
        }
    }
}
