//! Quickstart: gravity with the HOT treecode in ~40 lines.
//!
//! Builds a Plummer sphere, computes treecode forces, checks them against
//! the exact O(N²) sum, then integrates a few orbits worth of dynamics and
//! watches energy conservation.
//!
//! Run: `cargo run --release --example quickstart`

use hot_base::flops::FlopCounter;
use hot_core::Mac;
use hot_gravity::direct::direct_serial_pot;
use hot_gravity::models::{bounding_domain, plummer};
use hot_gravity::treecode::{ForceCalc, TreecodeOptions};
use hot_gravity::NBodySystem;
use hot_trace::{Ledger, ModelClock, RunReport};
use rand::SeedableRng;

fn main() {
    let n = 2_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let (pos, vel) = plummer(&mut rng, n);
    let mass = vec![1.0 / n as f64; n];
    println!("Plummer sphere, N = {n} (total mass 1, virial equilibrium)");

    // Treecode forces vs the exact sum.
    let counter = FlopCounter::new();
    let opts = TreecodeOptions {
        mac: Mac::BarnesHut { theta: 0.5 },
        bucket: 16,
        eps2: 1e-4,
        quadrupole: true,
        ..Default::default()
    };
    let domain = bounding_domain(&pos);
    let mut trace = Ledger::new(ModelClock::paper_loki());
    let res =
        ForceCalc::new().compute_traced(domain, &pos, &mass, &opts, &counter, false, &mut trace);
    let (exact, pot) = direct_serial_pot(&pos, &mass, 1e-4, &counter);
    let mut rms = 0.0;
    for (a, e) in res.acc.iter().zip(&exact) {
        let rel = (*a - *e).norm() / e.norm().max(1e-12);
        rms += rel * rel;
    }
    println!(
        "treecode: {} interactions (N² would need {}), RMS force error {:.1e}",
        res.stats.interactions(),
        n * (n - 1),
        (rms / n as f64).sqrt()
    );

    // Where that force evaluation spent its (model-clock) time, phase by
    // phase — the same ledger the distributed runs reduce across ranks.
    println!("{}", RunReport::from_single(&trace).render_table());

    // A short integration with the treecode in the loop.
    let mut sys = NBodySystem::new(pos, vel, mass, 1e-4);
    let e0 = sys.kinetic_energy() + sys.potential_energy(&pot);
    let counter = FlopCounter::new();
    let mass_c = sys.mass.clone();
    let counter_ref = &counter;
    // One ForceCalc for the whole integration: its interaction-list buffers
    // are reused across steps instead of being reallocated each call.
    let mut calc = ForceCalc::new();
    let mut forces = move |p: &[hot_base::Vec3]| {
        let domain = bounding_domain(p);
        calc.compute(domain, p, &mass_c, &opts, counter_ref, false).acc
    };
    let mut acc = forces(&sys.pos);
    let dt = 0.02;
    for step in 1..=100 {
        sys.kdk_step(&mut acc, dt, &mut forces);
        if step % 25 == 0 {
            let (_, pot) = direct_serial_pot(&sys.pos, &sys.mass, 1e-4, &counter);
            let e = sys.kinetic_energy() + sys.potential_energy(&pot);
            println!(
                "step {step:>4}: t = {:>5.2}, energy drift {:+.2e}",
                step as f64 * dt,
                (e - e0) / e0.abs()
            );
        }
    }
    let rep = counter.report();
    println!("total flops (paper convention, 38/interaction): {:.2e}", rep.flops() as f64);
}
