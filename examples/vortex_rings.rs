//! The fusion of two vortex rings — the Hyglac demonstration that the HOT
//! library "can solve a very general class of problems": same tree, same
//! walk, vector charges instead of masses.
//!
//! Run: `cargo run --release --example vortex_rings [n_phi] [steps]`

use hot_base::flops::FlopCounter;
use hot_base::Vec3;
use hot_vortex::ring::{linear_impulse, make_ring, total_vorticity, RingSpec};
use hot_vortex::sim::VortexSim;

fn arg(idx: usize, default: usize) -> usize {
    std::env::args().nth(idx).and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let n_phi = arg(1, 40);
    let steps = arg(2, 16);

    // Two rings side by side, tilted toward each other: they attract,
    // collide and reconnect ("fusion").
    let spec_a = RingSpec {
        center: Vec3::new(-0.7, 0.0, 0.0),
        normal: Vec3::new(0.2, 0.0, 1.0),
        radius: 1.0,
        core: 0.15,
        circulation: 1.0,
        n_phi,
        n_core: 2,
    };
    let spec_b = RingSpec {
        center: Vec3::new(0.7, 0.0, 0.0),
        normal: Vec3::new(-0.2, 0.0, 1.0),
        ..spec_a
    };
    let (mut pos, mut alpha) = make_ring(&spec_a);
    let (pb, ab) = make_ring(&spec_b);
    pos.extend(pb);
    alpha.extend(ab);
    println!("two vortex rings, {} particles (paper started with 57,000)", pos.len());

    let mut sim = VortexSim::new(pos, alpha, 0.15);
    sim.theta = 0.5;
    let counter = FlopCounter::new();
    let imp0 = linear_impulse(&sim.pos, &sim.alpha);
    let om0 = total_vorticity(&sim.alpha);

    for s in 1..=steps {
        sim.step_rk2(0.05, &counter);
        // Ring separation diagnostic: x-spread of the vorticity centroid.
        let mean_x: f64 = sim.pos.iter().map(|p| p.x.abs()).sum::<f64>() / sim.len() as f64;
        if s % 4 == 0 {
            println!(
                "  t = {:>5.2}: <|x|> = {:.3} (rings approaching), {} particles",
                sim.time, mean_x, sim.len()
            );
        }
        if s % 8 == 0 {
            let before = sim.len();
            sim.remesh_now(0.11, 0.02);
            println!("  remesh: {} -> {} particles (core overlap maintained)", before, sim.len());
        }
    }

    let imp1 = linear_impulse(&sim.pos, &sim.alpha);
    let om1 = total_vorticity(&sim.alpha);
    println!("\ninvariants over the run:");
    println!("  total vorticity drift |dOmega| = {:.2e}", (om1 - om0).norm());
    println!(
        "  linear impulse drift = {:.2e} (relative {:.1e})",
        (imp1 - imp0).norm(),
        (imp1 - imp0).norm() / imp0.norm()
    );
    let rep = counter.report();
    println!(
        "  {} vortex interactions -> {:.2e} flops (123/interaction, counted in-kernel)",
        rep.vortex_interactions(),
        rep.flops() as f64
    );
}
