//! The paper's argument in one binary: run the identical treecode
//! benchmark on the simulated message-passing machine, then price the same
//! workload on every 1997 platform the paper discusses — ASCI Red, Loki,
//! Hyglac, the SC'96 bridged pair — using their measured constants.
//!
//! Run: `cargo run --release --example cluster_shootout [np] [n_per_rank]`

use hot_comm::RunConfig;
use hot_base::flops::FlopCounter;
use hot_base::{Aabb, Vec3, FLOPS_PER_GRAV_INTERACTION};
use hot_core::decomp::Body;
use hot_gravity::dist::{distributed_accelerations, DistOptions};
use hot_machine::cost::dollars_per_mflop;
use hot_machine::perf::{predict, scale_traffic, PhaseCount};
use hot_machine::specs::{ASCI_RED_6800, HYGLAC, LOKI, LOKI_HYGLAC_SC96};
use hot_morton::Key;
use rand::{Rng, SeedableRng};

fn arg(idx: usize, default: usize) -> usize {
    std::env::args().nth(idx).and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let np = arg(1, 8) as u32;
    let per = arg(2, 4_000);
    println!("distributed treecode benchmark: {np} ranks x {per} bodies");

    let out = RunConfig::builder().np(np).run(move |c| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(c.rank() as u64);
        let bodies: Vec<Body<f64>> = (0..per)
            .map(|i| {
                let pos = Vec3::new(rng.gen(), rng.gen(), rng.gen());
                Body {
                    key: Key::from_point(pos, &Aabb::unit()),
                    pos,
                    charge: 1.0 / (per as f64 * c.size() as f64),
                    work: 1.0,
                    id: c.rank() as u64 * 1_000_000 + i as u64,
                }
            })
            .collect();
        let counter = FlopCounter::new();
        let opts = DistOptions { eps2: 1e-8, ..Default::default() };
        let res = distributed_accelerations(c, bodies, Aabb::unit(), &opts, &counter);
        (res.stats.walk.interactions(), res.stats.parks, c.stats())
    });
    let inter: u64 = out.results.iter().map(|r| r.0).sum();
    let parks: u64 = out.results.iter().map(|r| r.1).sum();
    let n = np as u64 * per as u64;
    println!(
        "  {} interactions ({} per particle), {} latency-hiding context switches",
        inter,
        inter / n,
        parks
    );
    let flops = inter * FLOPS_PER_GRAV_INTERACTION;
    let traffic: Vec<_> = out.results.iter().map(|r| r.2).collect();

    println!("\nsame force evaluation priced on the 1997 machines:");
    println!(
        "{:>28} {:>7} {:>12} {:>12} {:>12}",
        "machine", "procs", "time (s)", "Mflops", "$/Mflop"
    );
    for m in [&ASCI_RED_6800, &LOKI, &HYGLAC, &LOKI_HYGLAC_SC96] {
        let phase = PhaseCount {
            flops,
            max_rank_flops: 0,
            traffic: scale_traffic(&traffic, np, m.procs()),
        };
        let p = predict(m, &phase);
        let price = m
            .price
            .map(|c| format!("{:>12.0}", dollars_per_mflop(c, p.mflops)))
            .unwrap_or_else(|| format!("{:>12}", "-"));
        println!(
            "{:>28} {:>7} {:>12.4} {:>12.1} {price}",
            m.name,
            m.procs(),
            p.serial_s,
            p.mflops
        );
    }
    println!("\n(the commodity machines lose on raw speed and win on $/Mflop —");
    println!(" the 1997 Gordon Bell double verdict)");
}
