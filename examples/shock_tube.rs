//! The Sod shock tube with the SPH module — the third physics application
//! the paper lists against the HOT library.
//!
//! Run: `cargo run --release --example shock_tube [n_left] [steps]`

use hot_base::flops::FlopCounter;
use hot_sph::hydro::{neighbors_1d, sod_shock_tube, Viscosity};

fn arg(idx: usize, default: usize) -> usize {
    std::env::args().nth(idx).and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let n_left = arg(1, 160);
    let steps = arg(2, 500);
    let mut sys = sod_shock_tube(n_left);
    println!(
        "Sod shock tube: {} particles, density 1.0 | 0.125, pressure 1.0 | 0.1, gamma = 1.4",
        sys.pos.len()
    );

    let counter = FlopCounter::new();
    let visc = Viscosity::default();
    let dt = 2e-4;
    let nb0 = neighbors_1d(&sys);
    sys.compute_density(&nb0, &counter);
    let (mut acc, mut dudt) = sys.compute_forces(&nb0, &visc, &counter);
    for _ in 0..steps {
        let n = sys.pos.len();
        for i in 0..n {
            sys.vel[i] += acc[i] * (0.5 * dt);
            sys.u[i] = (sys.u[i] + dudt[i] * 0.5 * dt).max(1e-10);
            sys.pos[i] += sys.vel[i] * dt;
        }
        let nb = neighbors_1d(&sys);
        sys.compute_density(&nb, &counter);
        let (a2, du2) = sys.compute_forces(&nb, &visc, &counter);
        for i in 0..n {
            sys.vel[i] += a2[i] * (0.5 * dt);
            sys.u[i] = (sys.u[i] + du2[i] * 0.5 * dt).max(1e-10);
        }
        acc = a2;
        dudt = du2;
    }
    let t = steps as f64 * dt;
    println!("evolved to t = {t:.3}; profile (x, rho, v, P):");
    // Print a coarse profile through the tube.
    let mut samples: Vec<(f64, f64, f64, f64)> = Vec::new();
    for i in 0..sys.pos.len() {
        let x = sys.pos[i].x;
        if (-0.4..0.4).contains(&x) {
            samples.push((x, sys.rho[i], sys.vel[i].x, sys.pressure(i)));
        }
    }
    samples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    for chunk in samples.chunks(samples.len() / 16 + 1) {
        let m = chunk[chunk.len() / 2];
        println!("  x = {:>6.3}   rho = {:>6.3}   v = {:>6.3}   P = {:>6.3}", m.0, m.1, m.2, m.3);
    }
    println!("\nexact (t = 0.1): plateau v = 0.9275, contact rho = 0.4263/0.2656, post-shock P = 0.3031");
    println!("SPH pair evaluations: {}", counter.get(hot_base::flops::Kind::SphPair));
}
