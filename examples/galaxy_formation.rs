//! Galaxy formation, the paper's flagship application: CDM initial
//! conditions (BBKS spectrum → Gaussian field → Zel'dovich displacements),
//! the multi-mass sphere+buffer construction, comoving treecode evolution,
//! a friends-of-friends "galaxy" catalogue and the log-density image of
//! Figures 1–2.
//!
//! Run: `cargo run --release --example galaxy_formation [grid] [steps]`
//! Writes `galaxy_formation.pgm`.

use hot_base::flops::FlopCounter;
use hot_base::Vec3;
use hot_cosmo::fof::friends_of_friends;
use hot_cosmo::ics::{gaussian_field, sphere_with_buffer, zeldovich};
use hot_cosmo::image::project_log_density;
use hot_cosmo::power::CdmSpectrum;
use hot_cosmo::sim::{growth_factor, zeldovich_velocity_factor, CosmoSim, RHO_BAR};
use hot_gravity::treecode::TreecodeOptions;
use rand::SeedableRng;

fn arg(idx: usize, default: usize) -> usize {
    std::env::args().nth(idx).and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let grid = arg(1, 16).next_power_of_two();
    let steps = arg(2, 10);
    let box_size = 100.0;
    let (a0, a1) = (0.15, 0.55);

    println!("CDM power spectrum (BBKS, sigma8 = 1) on a {grid}^3 grid, {box_size} Mpc box");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let spec = CdmSpectrum::default().normalized_to_sigma8(1.0);
    let field = gaussian_field(&mut rng, grid, box_size, &spec);
    let ics = zeldovich(&field, growth_factor(a0), zeldovich_velocity_factor(a0));
    println!(
        "Zel'dovich displacements applied at a = {a0} (rms {:.2} Mpc)",
        ics.rms_displacement
    );

    let cell = box_size / grid as f64;
    let base_mass = RHO_BAR * cell * cell * cell;
    let (pos, vel, mass) =
        sphere_with_buffer(&mut rng, &ics, base_mass, box_size * 0.3, box_size * 0.5);
    println!(
        "{} particles: high-res sphere of {} Mpc + 8x-mass buffer shell (the paper's setup)",
        pos.len(),
        box_size * 0.3
    );

    let opts = TreecodeOptions { eps2: (0.05 * cell) * (0.05 * cell), ..Default::default() };
    let mut sim = CosmoSim::new(pos, vel, mass, a0, Vec3::splat(box_size * 0.5), opts);
    let counter = FlopCounter::new();
    let da = (a1 - a0) / steps as f64;
    for s in 1..=steps {
        let inter = sim.step(da, &counter);
        println!("  step {s:>3}: a = {:.3}  ({inter} interactions)", sim.a);
    }
    println!("flops: {:.2e} (paper convention)", counter.report().flops() as f64);

    let halos = friends_of_friends(&sim.pos, &sim.mass, 0.5 * cell, 8);
    println!("\n{} collapsed halos (friends-of-friends, b = 0.5):", halos.len());
    for (i, h) in halos.iter().take(8).enumerate() {
        println!(
            "  #{i}: {:>5} particles at ({:>5.1}, {:>5.1}, {:>5.1})",
            h.members.len(),
            h.center.x,
            h.center.y,
            h.center.z
        );
    }

    let img = project_log_density(&sim.pos, &sim.mass, 400, 400, 0.0..box_size, 0.0..box_size);
    img.save_pgm(std::path::Path::new("galaxy_formation.pgm")).expect("write image");
    println!("\nwrote galaxy_formation.pgm (log projected density, as in Figures 1-2)");
}
