//! # hot97 — umbrella crate for the SC'97 HOT treecode reproduction
//!
//! Re-exports every subsystem of the workspace so examples and downstream
//! users can depend on a single crate. See the README for a map, DESIGN.md
//! for the system inventory and EXPERIMENTS.md for paper-vs-measured
//! results.
//!
//! ```
//! use hot97::gravity::models::plummer;
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (pos, vel) = plummer(&mut rng, 100);
//! assert_eq!(pos.len(), vel.len());
//! ```

#![warn(missing_docs)]

pub use hot_base as base;
pub use hot_comm as comm;
pub use hot_core as core;
pub use hot_cosmo as cosmo;
pub use hot_gravity as gravity;
pub use hot_machine as machine;
pub use hot_morton as morton;
pub use hot_npb as npb;
pub use hot_sph as sph;
pub use hot_vortex as vortex;
