//! Differential oracle for the traced treecode: the instrumented pipeline
//! against the O(N²) direct sum (see VERIFICATION.md, "Trace invariants").
//!
//! Three independent cross-checks on one seeded Plummer sphere:
//!
//! 1. **Physics** — treecode accelerations agree with the direct sum to
//!    RMS relative error < 1e-3 at the accuracy settings used.
//! 2. **Ledger vs walk** — the ledger's force-phase interaction counters
//!    equal the walk statistics the evaluation itself reports, and its
//!    flop counter equals the [`FlopCounter`] delta.
//! 3. **Direct-sum accounting** — the direct sum records exactly
//!    N·(N−1) particle–particle interactions, the closed form the paper's
//!    flop convention is anchored to.

use hot_base::flops::{FlopCounter, Kind};
use hot_core::Mac;
use hot_gravity::direct::direct_serial;
use hot_gravity::models::{bounding_domain, plummer};
use hot_gravity::treecode::{ForceCalc, TreecodeOptions};
use hot_trace::{Counter, Ledger, ModelClock};
use rand::SeedableRng;

const N: usize = 1000;
const EPS2: f64 = 1e-6;

#[test]
fn treecode_ledger_agrees_with_direct_oracle() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
    let (pos, _vel) = plummer(&mut rng, N);
    let mass = vec![1.0 / N as f64; N];
    let domain = bounding_domain(&pos);

    // Oracle: O(N²) direct sum, with its own interaction accounting.
    let direct_counter = FlopCounter::new();
    let exact = direct_serial(&pos, &mass, EPS2, &direct_counter);
    assert_eq!(
        direct_counter.get(Kind::GravPP),
        (N * (N - 1)) as u64,
        "direct sum must count exactly N(N-1) particle-particle interactions"
    );

    // Instrumented treecode at high accuracy.
    let counter = FlopCounter::new();
    let opts = TreecodeOptions {
        mac: Mac::BarnesHut { theta: 0.4 },
        bucket: 8,
        eps2: EPS2,
        quadrupole: true,
        ..Default::default()
    };
    let mut trace = Ledger::new(ModelClock::paper_loki());
    let res =
        ForceCalc::new().compute_traced(domain, &pos, &mass, &opts, &counter, false, &mut trace);

    // 1. Physics against the oracle.
    let mut sum2 = 0.0;
    for (a, e) in res.acc.iter().zip(&exact) {
        let rel = (*a - *e).norm() / e.norm().max(1e-12);
        sum2 += rel * rel;
    }
    let rms = (sum2 / N as f64).sqrt();
    assert!(rms < 1e-3, "treecode vs direct RMS relative error {rms} >= 1e-3");

    // 2. Ledger counters against the walk's own statistics.
    let totals = trace.totals();
    assert_eq!(totals.get(Counter::PpInteractions), res.stats.pp);
    assert_eq!(totals.get(Counter::PcInteractions), res.stats.pc);
    assert_eq!(
        totals.interactions(),
        res.stats.interactions(),
        "ledger interaction total must equal the walk's"
    );
    assert_eq!(totals.get(Counter::CellsOpened), res.stats.opened);
    assert_eq!(
        totals.get(Counter::Flops),
        counter.report().flops(),
        "ledger flops must equal the FlopCounter delta for the evaluation"
    );

    // The treecode must actually have approximated: far fewer interactions
    // than the oracle, yet more than N (everything interacts with
    // something).
    assert!(totals.interactions() < (N * (N - 1)) as u64 / 2);
    assert!(totals.interactions() > N as u64);
}
