//! Integration tests of the benchmark/model layer: the NPB kernels on the
//! comm substrate combined with the 1997 machine models must reproduce the
//! paper's *qualitative* rankings (Table 3's shape), and the headline
//! price/performance arithmetic must come out as printed.

use hot97::comm::RunConfig;
use hot97::machine::cost::{dollars_per_mflop, loki_sept_1996};
use hot97::machine::perf::{predict, PhaseCount};
use hot97::machine::specs::{ASCI_RED_6800, JANUS_16, LOKI};

/// IS is the benchmark where Loki loses hardest to ASCI Red (14.8 vs 38.0
/// in Table 3), because it is message-bandwidth bound. EP barely cares.
/// Run both kernels, model both machines, check the ratio ordering.
#[test]
fn table3_shape_is_worse_on_loki_than_ep() {
    let np = 8u32;
    let is_out = RunConfig::builder().np(np).run(|c| hot97::npb::is::run(c, 15, 16));
    let ep_out = RunConfig::builder().np(np).run(|c| hot97::npb::ep::run(c, 15).0);
    assert!(is_out.results.iter().all(|r| r.verified));
    assert!(ep_out.results.iter().all(|r| r.verified));

    let model = |ops: u64, traffic: &[hot97::comm::TrafficStats], per_proc: f64, m: &hot97::machine::MachineSpec| {
        let compute = ops as f64 / (np as f64 * per_proc * 1e6);
        let comm = m.network.phase_comm_time(traffic);
        ops as f64 / (compute + comm) / 1e6
    };
    let is_ops = is_out.results[0].ops;
    let ep_ops = ep_out.results[0].ops;
    let is_loki = model(is_ops, &is_out.stats, 25.0, &LOKI);
    let is_red = model(is_ops, &is_out.stats, 29.0, &JANUS_16);
    let ep_loki = model(ep_ops, &ep_out.stats, 0.6, &LOKI);
    let ep_red = model(ep_ops, &ep_out.stats, 0.6, &JANUS_16);

    let is_ratio = is_red / is_loki;
    let ep_ratio = ep_red / ep_loki;
    assert!(
        is_ratio > ep_ratio,
        "IS must suffer more on fast ethernet: IS red/loki = {is_ratio:.2}, EP = {ep_ratio:.2}"
    );
    assert!(is_ratio > 1.2, "the network gap must show on IS: {is_ratio:.2}");
    assert!(ep_ratio < 1.1, "EP barely communicates: {ep_ratio:.2}");
}

/// The paper's own numbers must be stationary points of the model: feeding
/// the measured interaction counts back in reproduces the quoted Gflops.
#[test]
fn headline_numbers_reproduce() {
    // N² benchmark: 1e6² × 38 × 4 flops in 239.3 s = 635 Gflops.
    let phase = PhaseCount {
        flops: 1_000_000u64 * 1_000_000 * 38 * 4,
        max_rank_flops: 0,
        traffic: vec![],
    };
    let p = predict(&ASCI_RED_6800, &phase);
    assert!((p.serial_s - 239.3).abs() < 3.0, "{p:?}");
    assert!((p.mflops / 1e3 - 635.0).abs() < 8.0);

    // Loki initial phase: 1.15e12 interactions in 36973 s = 1.19 Gflops.
    let phase = PhaseCount {
        flops: (1.15e12 * 38.0) as u64,
        max_rank_flops: 0,
        traffic: vec![],
    };
    let p = predict(&LOKI, &phase);
    assert!((p.mflops / 1e3 - 1.19).abs() < 0.05, "{p:?}");

    // $58/Mflop for the ten-day 879 Mflops run on the $51,379 machine.
    let dpm = dollars_per_mflop(loki_sept_1996().total(), 879.0);
    assert!((dpm - 58.45).abs() < 0.5);
}

/// Treecode beats N² catastrophically at the paper's scale — the 1e5
/// efficiency headline, computed from our own measured scaling.
#[test]
fn algorithmic_advantage_order_of_magnitude() {
    use hot97::base::flops::FlopCounter;
    use hot97::base::Aabb;
    use hot97::gravity::models::uniform_box;
    use hot97::gravity::treecode::{ForceCalc, TreecodeOptions};
    use rand::SeedableRng;

    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut per_particle = Vec::new();
    let mut calc = ForceCalc::new();
    for &n in &[2_000usize, 8_000] {
        let pos = uniform_box(&mut rng, n, &Aabb::unit());
        let mass = vec![1.0 / n as f64; n];
        let counter = FlopCounter::new();
        let res = calc.compute(
            Aabb::unit(),
            &pos,
            &mass,
            &TreecodeOptions::default(),
            &counter,
            false,
        );
        per_particle.push((n as f64, res.stats.interactions() as f64 / n as f64));
    }
    // Fit ipp = a + b ln N, extrapolate to 322M.
    let (n1, i1) = per_particle[0];
    let (n2, i2) = per_particle[1];
    let b = (i2 - i1) / (n2.ln() - n1.ln());
    let a = i1 - b * n1.ln();
    let n322: f64 = 322e6;
    let ipp = a + b * n322.ln();
    let advantage = n322 / ipp;
    assert!(
        (2e4..2e6).contains(&advantage),
        "advantage {advantage:.1e} should be ~1e5 as the paper claims"
    );
}
