//! Golden-snapshot test for the `hot-trace/faults-v2` fault report (see
//! VERIFICATION.md, "Fault invariants").
//!
//! The fault report's *values* are deliberately outside the determinism
//! contract — a race can cause a spurious retransmit that dup-suppression
//! absorbs — so the golden pins the **schema**: key names, key order, and
//! formatting, rendered from a planted synthetic report whose counters are
//! fixed by construction. Any intentional schema change shows up as a
//! readable first-difference diff; refresh with
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test faults_golden
//! ```
//!
//! and bump `FAULT_SCHEMA` in the same change.

use hot_comm::{FaultConfig, InjectedFaults, ReliabilityStats};
use hot_trace::FaultReport;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/faults_v2.json")
}

/// A planted report exercising every field of the v2 schema: a crash-stop
/// plan (kill rate + window), a fired kill, and per-rank counters covering
/// both the retransmit path (retries/timeouts/backoff) and the failure
/// detector (suspect escalations, dead confirms).
fn planted_report() -> FaultReport {
    let config = FaultConfig {
        kill: 1.0,
        kill_window: (16, 64),
        ..FaultConfig::hostile(97)
    };
    let per_rank = [
        ReliabilityStats {
            retries: 3,
            timeouts: 1,
            crc_rejects: 2,
            dup_suppressed: 1,
            stalls: 0,
            backoff_units: 7,
            suspect_events: 1,
            dead_confirms: 1,
        },
        ReliabilityStats {
            retries: 1,
            backoff_units: 1,
            suspect_events: 1,
            ..Default::default()
        },
        ReliabilityStats::default(),
    ];
    let injected = InjectedFaults {
        drops: 4,
        duplicates: 1,
        corruptions: 2,
        delays: 3,
        stalls: 0,
        kills: 1,
    };
    FaultReport::from_run(Some(config), &per_rank, injected)
}

/// Point at the first line where the two JSON documents diverge.
fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!(
                "first difference at line {}:\n  golden: {e}\n  actual: {a}",
                i + 1
            );
        }
    }
    format!(
        "one document is a prefix of the other ({} vs {} lines)",
        expected.lines().count(),
        actual.lines().count()
    )
}

#[test]
fn fault_report_schema_matches_committed_golden() {
    let actual = planted_report().to_json();
    assert!(actual.contains("\"schema\": \"hot-trace/faults-v2\""));

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("golden refreshed: {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDENS=1 cargo test --test faults_golden",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "fault report schema diverged from {}\n{}\n\
         (intentional change? refresh with UPDATE_GOLDENS=1 and review the diff)",
        path.display(),
        first_diff(&expected, &actual)
    );
}

/// The table renderer must surface the same v2 fields the JSON pins:
/// kill plan, fired kills, and detector escalation counters.
#[test]
fn fault_table_surfaces_detector_columns() {
    let t = planted_report().render_table();
    assert!(t.contains("kill 1 in [16, 64)"), "kill plan missing:\n{t}");
    assert!(t.contains("1 kills"), "fired-kill count missing:\n{t}");
    assert!(t.contains("suspects"), "suspect column missing:\n{t}");
    assert!(t.contains("dead"), "dead-confirm column missing:\n{t}");
}
