//! Integration test spanning every layer of the stack: keys → comm →
//! decomposition → distributed tree → latency-hiding walk → gravity
//! kernels, checked against the exact O(N²) answer — the end-to-end
//! statement that this reproduction's treecode computes the right physics
//! on a message-passing machine.

use hot97::comm::RunConfig;
use hot97::base::flops::FlopCounter;
use hot97::base::{Aabb, Vec3};
use hot97::core::decomp::Body;
use hot97::core::Mac;
use hot97::gravity::direct::direct_serial;
use hot97::gravity::dist::{distributed_accelerations, DistOptions};
use hot97::morton::Key;
use rand::{Rng, SeedableRng};

fn global_system(n: usize, seed: u64, clustered: bool) -> (Vec<Vec3>, Vec<f64>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pos = (0..n)
        .map(|i| {
            if clustered && i % 3 == 0 {
                let c = Vec3::new(0.3, 0.6, 0.4);
                c + Vec3::new(
                    rng.gen::<f64>() - 0.5,
                    rng.gen::<f64>() - 0.5,
                    rng.gen::<f64>() - 0.5,
                ) * 0.02
            } else {
                Vec3::new(rng.gen(), rng.gen(), rng.gen())
            }
        })
        .collect();
    let mass = (0..n).map(|_| rng.gen_range(0.5..2.0)).collect();
    (pos, mass)
}

fn run_case(np: u32, n: usize, clustered: bool, theta: f64, rms_budget: f64) {
    let (pos, mass) = global_system(n, 1234, clustered);
    let counter = FlopCounter::new();
    let exact = direct_serial(&pos, &mass, 1e-6, &counter);
    let (pos_c, mass_c, exact_c) = (pos.clone(), mass.clone(), exact.clone());

    let out = RunConfig::builder().np(np).run(move |c| {
        let per = n / np as usize;
        let lo = c.rank() as usize * per;
        let hi = if c.rank() == np - 1 { n } else { lo + per };
        let bodies: Vec<Body<f64>> = (lo..hi)
            .map(|i| Body {
                key: Key::from_point(pos_c[i], &Aabb::unit()),
                pos: pos_c[i],
                charge: mass_c[i],
                work: 1.0,
                id: i as u64,
            })
            .collect();
        let counter = FlopCounter::new();
        let opts = DistOptions {
            mac: Mac::BarnesHut { theta },
            eps2: 1e-6,
            ..Default::default()
        };
        let res = distributed_accelerations(c, bodies, Aabb::unit(), &opts, &counter);
        let mut sum2 = 0.0;
        for (b, a) in res.bodies.iter().zip(&res.acc) {
            let e = exact_c[b.id as usize];
            let rel = (*a - e).norm() / e.norm().max(1e-12);
            sum2 += rel * rel;
        }
        (res.bodies.len(), sum2, res.stats.walk.interactions())
    });

    let total: usize = out.results.iter().map(|r| r.0).sum();
    assert_eq!(total, n, "np={np}: bodies conserved");
    let rms = (out.results.iter().map(|r| r.1).sum::<f64>() / n as f64).sqrt();
    assert!(rms < rms_budget, "np={np} clustered={clustered}: rms {rms} > {rms_budget}");
    let tree_inter: u64 = out.results.iter().map(|r| r.2).sum();
    // At production MAC settings the treecode already beats N² even at
    // these tiny N; a very tight theta at small N legitimately approaches
    // the direct count.
    if theta >= 0.5 {
        assert!(
            tree_inter < (n as u64) * (n as u64 - 1) / 2,
            "treecode must beat N² even at this N"
        );
    }
    assert!(tree_inter < (n as u64) * (n as u64), "never exceed the direct count");
}

#[test]
fn uniform_two_ranks() {
    run_case(2, 600, false, 0.5, 6e-3);
}

#[test]
fn uniform_five_ranks() {
    run_case(5, 700, false, 0.5, 6e-3);
}

#[test]
fn clustered_four_ranks() {
    run_case(4, 800, true, 0.5, 8e-3);
}

#[test]
fn tight_mac_three_ranks() {
    run_case(3, 500, false, 0.3, 2e-3);
}

/// The Salmon–Warren error-bound MAC also works through the full
/// distributed pipeline.
#[test]
fn salmon_warren_distributed() {
    let n = 500;
    let (pos, mass) = global_system(n, 77, false);
    let counter = FlopCounter::new();
    let exact = direct_serial(&pos, &mass, 1e-6, &counter);
    let (pos_c, mass_c, exact_c) = (pos.clone(), mass.clone(), exact.clone());
    let out = RunConfig::builder().np(3).run(move |c| {
        let per = n / 3;
        let lo = c.rank() as usize * per;
        let hi = if c.rank() == 2 { n } else { lo + per };
        let bodies: Vec<Body<f64>> = (lo..hi)
            .map(|i| Body {
                key: Key::from_point(pos_c[i], &Aabb::unit()),
                pos: pos_c[i],
                charge: mass_c[i],
                work: 1.0,
                id: i as u64,
            })
            .collect();
        let counter = FlopCounter::new();
        let opts = DistOptions {
            mac: Mac::SalmonWarren { delta: 1e-4 },
            eps2: 1e-6,
            ..Default::default()
        };
        let res = distributed_accelerations(c, bodies, Aabb::unit(), &opts, &counter);
        let mut worst = 0.0f64;
        for (b, a) in res.bodies.iter().zip(&res.acc) {
            let e = exact_c[b.id as usize];
            worst = worst.max((*a - e).norm() / e.norm().max(1e-12));
        }
        worst
    });
    for &w in &out.results {
        assert!(w < 0.05, "worst-case relative error {w}");
    }
}
