//! Golden-snapshot tests for the `hot-analyze` JSON output (see
//! VERIFICATION.md, "Protocol invariants").
//!
//! CI consumes `hot-analyze lint --json` / `protocol --json` as
//! artifacts, so the schema (`hot-analyze/lint-v1`, `hot-analyze/
//! protocol-v1`) is a contract: field names, ordering, and the
//! finding shape are pinned here against *planted fixtures* — small
//! sources with known findings — rather than the live workspace, whose
//! line numbers churn with every edit. Any intentional schema change
//! shows up as a readable first-difference diff; refresh with
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test analyze_golden
//! ```
//!
//! and bump the schema version string in the same change.

use hot_analyze::{json, lint, protocol};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(name)
}

/// Point at the first line where the two documents diverge.
fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!(
                "first difference at line {}:\n  golden: {e}\n  actual: {a}",
                i + 1
            );
        }
    }
    format!(
        "one document is a prefix of the other ({} vs {} lines)",
        expected.lines().count(),
        actual.lines().count()
    )
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("golden refreshed: {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDENS=1 cargo test --test analyze_golden",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "JSON output diverged from {}\n{}\n\
         (intentional schema change? refresh with UPDATE_GOLDENS=1, review, \
         and bump the schema version)",
        path.display(),
        first_diff(&expected, actual)
    );
}

/// A moments-scope fixture tripping four lint rules at known lines.
const LINT_FIXTURE: &str = "\
use std::collections::HashMap;
pub fn shrink(x: f64) -> f32 {
    let cache: HashMap<u32, f64> = HashMap::new();
    let t0 = Instant::now();
    let y = cache.get(&0).unwrap();
    x as f32
}
";

#[test]
fn lint_json_matches_committed_golden() {
    let findings = lint::lint_source("crates/core/src/moments.rs", LINT_FIXTURE, &[]);
    assert!(!findings.is_empty(), "planted lint fixture produced no findings");
    check("analyze_lint_fixture.json", &json::lint_json(&findings));
}

/// A comm-scope fixture tripping all three protocol rules: a
/// rank-guarded barrier, an orphan tag in each direction, and a counter
/// incremented from two crates.
fn protocol_fixture() -> Vec<(String, String)> {
    let comm = "\
fn exchange(c: &mut Comm) {
    if c.rank() == 0 {
        c.barrier();
    }
    c.send(1, TAG_ORPHAN, &v);
    let r: u64 = c.recv(0, TAG_GHOST);
    c.send(1, TAG_OK, &v);
    let s: u64 = c.recv(0, TAG_OK);
    t.add(Counter::Flops, 38);
}
";
    let gravity = "\
fn kernel(t: &mut Ledger) {
    t.add(Counter::Flops, 38);
}
";
    vec![
        ("crates/comm/src/runtime.rs".to_string(), comm.to_string()),
        ("crates/gravity/src/evaluator.rs".to_string(), gravity.to_string()),
    ]
}

#[test]
fn protocol_json_matches_committed_golden() {
    let rep = protocol::check_files(&protocol_fixture());
    assert!(!rep.summary.vacuous(), "planted protocol fixture extracted nothing");
    let rules: Vec<&str> = rep.findings.iter().map(|f| f.rule).collect();
    for rule in protocol::RULES {
        assert!(
            rules.contains(&rule),
            "planted fixture should trip {rule}; got {rules:?}"
        );
    }
    check("analyze_protocol_fixture.json", &json::protocol_json(&rep));
}
