//! Golden-snapshot test for the `hot-trace` ledger (see VERIFICATION.md,
//! "Trace invariants").
//!
//! A seeded 2-rank distributed force evaluation must reproduce the
//! committed report JSON *bitwise* — every counter, every span, every
//! model-clock second. Any intentional change to the pipeline's message
//! pattern, traversal, flop accounting or the report schema shows up here
//! as a readable first-difference diff; refresh the snapshot with
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test trace_golden
//! ```
//!
//! and review the golden's diff like any other code change.

use hot_base::flops::FlopCounter;
use hot_comm::{RunConfig, Runtime};
use hot_base::{Aabb, Vec3};
use hot_core::decomp::Body;
use hot_gravity::dist::{distributed_accelerations_traced, DistOptions};
use hot_morton::Key;
use hot_trace::{Ledger, ModelClock};
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

const NP: u32 = 2;
const N_PER_RANK: usize = 150;
const SEED: u64 = 20260807;

fn seeded_bodies(rank: u32) -> Vec<Body<f64>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED ^ (u64::from(rank) << 32));
    (0..N_PER_RANK)
        .map(|i| {
            let pos = Vec3::new(rng.gen(), rng.gen(), rng.gen());
            Body {
                key: Key::from_point(pos, &Aabb::unit()),
                pos,
                charge: rng.gen_range(0.5..1.5),
                work: 1.0,
                id: u64::from(rank) * 1_000_000 + i as u64,
            }
        })
        .collect()
}

/// Run the pipeline and return every rank's reduced report JSON.
fn run_traced() -> Vec<String> {
    run_traced_on(Runtime::Threads)
}

fn run_traced_on(rt: Runtime) -> Vec<String> {
    let out = RunConfig::builder().np(NP).runtime(rt).run(|c| {
        let bodies = seeded_bodies(c.rank());
        let counter = FlopCounter::new();
        let opts = DistOptions { eps2: 1e-6, ..Default::default() };
        let mut trace = Ledger::new(ModelClock::paper_loki());
        let _ = distributed_accelerations_traced(c, bodies, Aabb::unit(), &opts, &counter, &mut trace);
        hot_trace::reduce(c, &trace).to_json()
    });
    out.results
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/trace_np2.json")
}

/// Point at the first line where the two JSON documents diverge.
fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!(
                "first difference at line {}:\n  golden: {e}\n  actual: {a}",
                i + 1
            );
        }
    }
    format!(
        "one document is a prefix of the other ({} vs {} lines)",
        expected.lines().count(),
        actual.lines().count()
    )
}

#[test]
fn ledger_matches_committed_golden() {
    let reports = run_traced();
    let actual = &reports[0];
    for (rank, r) in reports.iter().enumerate() {
        assert_eq!(
            r, actual,
            "rank {rank} reduced to a different report than rank 0"
        );
    }

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("golden refreshed: {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDENS=1 cargo test --test trace_golden",
            path.display()
        )
    });
    assert!(
        expected == *actual,
        "trace report diverged from {}\n{}\n\
         (intentional change? refresh with UPDATE_GOLDENS=1 and review the diff)",
        path.display(),
        first_diff(&expected, actual)
    );
}

/// Repeated runs in the same process must be bitwise identical — the
/// ledger depends only on the seeded inputs, never on wall-clock, rank
/// interleaving or allocator state.
#[test]
fn repeated_runs_are_bitwise_identical() {
    let a = run_traced();
    let b = run_traced();
    assert_eq!(a, b, "two identical runs produced different ledgers");
}

/// The thread→fiber substrate swap must be invisible to the ledger: the
/// event runtime reproduces the *same* committed golden, bit for bit —
/// the acceptance gate for the event-driven rank runtime.
#[test]
fn event_runtime_reproduces_the_same_golden() {
    let threads = run_traced();
    let events = run_traced_on(Runtime::Events);
    assert_eq!(
        threads, events,
        "event-runtime ledger diverged from the thread-runtime ledger"
    );
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        return; // ledger_matches_committed_golden owns the refresh
    }
    let expected = std::fs::read_to_string(golden_path()).expect("golden present");
    assert!(
        expected == events[0],
        "event-runtime trace diverged from the committed golden
{}",
        first_diff(&expected, &events[0])
    );
}
