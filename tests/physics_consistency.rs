//! Cross-module physics integration tests: the cosmology pipeline drives
//! the gravity treecode; the vortex module conserves its invariants
//! through tree-driven dynamics; flop accounting is consistent across
//! modules.

use hot97::base::flops::FlopCounter;
use hot97::base::Vec3;
use hot97::cosmo::fof::friends_of_friends;
use hot97::cosmo::ics::{gaussian_field, sphere_with_buffer, zeldovich};
use hot97::cosmo::power::CdmSpectrum;
use hot97::cosmo::sim::{growth_factor, zeldovich_velocity_factor, CosmoSim, RHO_BAR};
use hot97::gravity::treecode::TreecodeOptions;
use rand::SeedableRng;

/// End-to-end cosmology: spectrum → field → Zel'dovich → sphere+buffer →
/// comoving treecode evolution → clustering grows and `FoF` finds structure.
#[test]
fn cosmology_pipeline_forms_structure() {
    let grid = 16;
    let box_size = 80.0;
    let a0 = 0.15;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let spec = CdmSpectrum::default().normalized_to_sigma8(1.1);
    let field = gaussian_field(&mut rng, grid, box_size, &spec);
    let ics = zeldovich(&field, growth_factor(a0), zeldovich_velocity_factor(a0));
    let cell = box_size / grid as f64;
    let m = RHO_BAR * cell * cell * cell;
    let (pos, vel, mass) =
        sphere_with_buffer(&mut rng, &ics, m, box_size * 0.3, box_size * 0.48);
    let n = pos.len();
    assert!(n > 300, "enough particles to mean something: {n}");
    // Buffer particles exist and carry 8x mass.
    assert!(mass.iter().any(|&mm| (mm - 8.0 * m).abs() < 1e-12));

    let opts = TreecodeOptions { eps2: (0.05 * cell) * (0.05 * cell), ..Default::default() };
    let mut sim = CosmoSim::new(pos, vel, mass, a0, Vec3::splat(box_size * 0.5), opts);
    let counter = FlopCounter::new();

    // Density contrast proxy: rms displacement from initial comoving
    // positions must grow as collapse proceeds.
    let start = sim.pos.clone();
    for _ in 0..20 {
        sim.step(0.03, &counter);
    }
    let moved: f64 =
        sim.pos.iter().zip(&start).map(|(a, b)| (*a - *b).norm()).sum::<f64>() / n as f64;
    assert!(moved > 0.01 * cell, "particles must move: {moved}");
    assert!(counter.report().flops() > 0);

    // Clustering: FoF with a tight linking length finds at least one group
    // in the evolved state.
    // Linking at half the lattice spacing selects ~8x overdensities.
    let halos = friends_of_friends(&sim.pos, &sim.mass, 0.5 * cell, 5);
    assert!(
        !halos.is_empty(),
        "gravitational collapse should have produced at least one FoF group"
    );
    // Halos are sorted by mass and consistent.
    for h in &halos {
        assert!(h.mass > 0.0);
        assert!(h.members.len() >= 5);
    }
}

/// The momentum of an isolated self-gravitating system is conserved by the
/// tree-driven integrator even though tree forces are not exactly
/// pairwise-antisymmetric — drift must stay tiny.
#[test]
fn tree_dynamics_momentum_drift_is_small() {
    use hot97::gravity::models::{bounding_domain, plummer};
    use hot97::gravity::treecode::ForceCalc;
    use hot97::gravity::NBodySystem;

    let n = 800;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let (pos, vel) = plummer(&mut rng, n);
    let mass = vec![1.0 / n as f64; n];
    let mut sys = NBodySystem::new(pos, vel, mass, 1e-3);
    let counter = FlopCounter::new();
    let opts = TreecodeOptions::default();
    let mass_c = sys.mass.clone();
    let counter_ref = &counter;
    let mut calc = ForceCalc::new();
    let mut forces = move |p: &[Vec3]| {
        calc.compute(bounding_domain(p), p, &mass_c, &opts, counter_ref, false).acc
    };
    let p0 = sys.momentum();
    let mut acc = forces(&sys.pos);
    for _ in 0..20 {
        sys.kdk_step(&mut acc, 0.02, &mut forces);
    }
    let drift = (sys.momentum() - p0).norm();
    // Typical |v| ~ 0.5; total |p| scale ~ mass * v = 0.5.
    assert!(drift < 5e-3, "momentum drift {drift}");
}

/// Flop accounting stays consistent when several modules share a counter.
#[test]
fn shared_flop_counter_across_modules() {
    use hot97::vortex::direct_velocity_stretching;

    let counter = FlopCounter::new();
    let pos = vec![
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(1.0, 0.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
    ];
    let alpha = vec![Vec3::new(0.0, 0.0, 0.1); 3];
    direct_velocity_stretching(&pos, &alpha, 0.01, &counter);
    let mass = vec![1.0; 3];
    hot97::gravity::direct::direct_serial(&pos, &mass, 1e-6, &counter);
    let rep = counter.report();
    assert_eq!(rep.vortex_pp, 6);
    assert_eq!(rep.grav_pp, 6);
    assert_eq!(
        rep.flops(),
        6 * hot97::base::FLOPS_PER_VORTEX_INTERACTION + 6 * hot97::base::FLOPS_PER_GRAV_INTERACTION
    );
}
