#!/usr/bin/env bash
# Tier-1+ verify: everything a PR must pass. See VERIFICATION.md.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q --workspace"
cargo test -q --offline --workspace

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> trace + analyze golden + differential suites"
cargo test -q --offline --test trace_golden --test trace_differential --test analyze_golden --test faults_golden

echo "==> hot-analyze lint"
cargo run -q --offline --release -p hot-analyze -- lint

echo "==> hot-analyze protocol (collective-order / tag-matching / counter-discipline)"
cargo run -q --offline --release -p hot-analyze -- protocol

echo "==> hot-analyze protocol non-vacuity (planted collective-order fixture must exit 1)"
planted=$(mktemp -d)
mkdir -p "$planted/crates/comm/src"
cat > "$planted/crates/comm/src/runtime.rs" <<'EOF'
fn exchange(c: &mut Comm) {
    if c.rank() == 0 {
        c.barrier();
    }
    c.send(1, TAG_WORK, &v);
    let (_, w) = c.recv_bytes(None, TAG_WORK);
}
EOF
rc=0
cargo run -q --offline --release -p hot-analyze -- protocol --root "$planted" >/dev/null || rc=$?
rm -rf "$planted"
if [ "$rc" -ne 1 ]; then
  echo "ERROR: planted collective-order fixture exited $rc, expected 1 — checker is vacuous" >&2
  exit 1
fi

echo "==> exp_kernels smoke (list pipeline vs scalar callback, bitwise gate)"
cargo run -q --offline --release -p hot-bench --bin exp_kernels -- 4096 2

echo "==> exp_latency smoke (walk pipeline vs blocking baseline, bitwise gate)"
cargo run -q --offline --release -p hot-bench --bin exp_latency -- 8192 4
test -s results/BENCH_latency.json

echo "==> hot-analyze schedules --seeds 32 (tracing enabled)"
cargo run -q --offline --release -p hot-analyze -- schedules --seeds 32

echo "==> hot-analyze faults --seeds 32 (fault plans × fuzzed schedules)"
cargo run -q --offline --release -p hot-analyze -- faults --seeds 32

echo "==> hot-analyze kills --seeds 8 (crash-stop detection + bitwise rollback recovery)"
cargo run -q --offline --release -p hot-analyze -- kills --seeds 8

echo "==> hot-analyze kills non-vacuity (planted undetected-kill fixture must exit 1)"
rc=0
cargo run -q --offline --release -p hot-analyze -- kills --planted-undetected >/dev/null || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "ERROR: planted undetected-kill fixture exited $rc, expected 1 — kill gate is vacuous" >&2
  exit 1
fi

echo "==> exp_event_scale smoke (np=1024 collectives + reduced treecode step on fibers, wall-clock budget)"
# Collectives at np=1024 twice (both stage slots), treecode at np=256 with
# 16 bodies/rank: the same O(log p) structural assertions and budgets as
# the full run, sized for CI. The full-size run (np=6800 collectives,
# np=1024 treecode) backs EXPERIMENTS.md H2.
cargo run -q --offline --release -p hot-bench --bin exp_event_scale -- 1024 256 16
test -s results/BENCH_event_scale.json

echo "==> exp_balance smoke (adaptive decomposition skew/migration gates + Hilbert cut surface)"
# np=64 only: the np>=256 acceptance gates (>=25% flop-skew reduction,
# amortized rebalance cost below walk time saved) run in the full
# `exp_balance` invocation that backs results/BENCH_balance.json.
cargo run -q --offline --release -p hot-bench --bin exp_balance -- 64
test -s results/BENCH_balance.json

echo "==> exp_recovery smoke (Daly cadence ≤ 5% overhead, bitwise recovery gate)"
cargo run -q --offline --release -p hot-bench --bin exp_recovery -- 2 128 4

echo "==> checkpoint/restart smoke (bitwise-identical resume)"
cargo test -q --offline --release -p hot-cosmo checkpoint

echo "==> ci.sh: all green"
