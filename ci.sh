#!/usr/bin/env bash
# Tier-1+ verify: everything a PR must pass. See VERIFICATION.md.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q --workspace"
cargo test -q --offline --workspace

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> trace golden + differential suites"
cargo test -q --offline --test trace_golden --test trace_differential

echo "==> hot-analyze lint"
cargo run -q --offline --release -p hot-analyze -- lint

echo "==> exp_kernels smoke (list pipeline vs scalar callback, bitwise gate)"
cargo run -q --offline --release -p hot-bench --bin exp_kernels -- 4096 2

echo "==> exp_latency smoke (walk pipeline vs blocking baseline, bitwise gate)"
cargo run -q --offline --release -p hot-bench --bin exp_latency -- 8192 4
test -s results/BENCH_latency.json

echo "==> hot-analyze schedules --seeds 32 (tracing enabled)"
cargo run -q --offline --release -p hot-analyze -- schedules --seeds 32

echo "==> hot-analyze faults --seeds 32 (fault plans × fuzzed schedules)"
cargo run -q --offline --release -p hot-analyze -- faults --seeds 32

echo "==> checkpoint/restart smoke (bitwise-identical resume)"
cargo test -q --offline --release -p hot-cosmo checkpoint

echo "==> ci.sh: all green"
